#pragma once
/// \file hub.hpp
/// The on-body hub ("wearable brain", paper Fig. 1 right): terminates the
/// body bus, runs edge inference sessions over delivered streams, and
/// uplinks results to fog/cloud. The hub is the one device that keeps the
/// daily-charging battery; its energy ledger (bus RX/TX + compute + uplink)
/// is tracked so the architecture comparison can show the *system* cost,
/// not just the leaf savings.
///
/// Two inference paths:
///  * per-frame (`batch_window == 0`, the legacy default): every time a
///    stream's staged bytes cross its window, one inference runs
///    immediately, re-streaming the model weights each time.
///  * superframe-batched (`batch_window == K >= 1`): deliveries stage per
///    stream tag; every K TDMA superframes the hub folds all sessions
///    sharing a model into one batched pass (`nn::Model::run_batched` is
///    the executable counterpart), attributing per-session energy as
///    `weight_cost / batch + per_sample_cost` and recording the staging
///    delay in `SessionStats::queued_latency_s`.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/tdma.hpp"
#include "net/session.hpp"
#include "nn/qmodel.hpp"
#include "nn/workspace.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/task_pool.hpp"

namespace iob::net {

struct HubConfig {
  double energy_per_mac_j = 5e-12;   ///< hub silicon efficiency
  double uplink_energy_per_bit_j = 30e-9;  ///< Wi-Fi-class
  double base_power_w = 50e-3;       ///< SoC idle/display/OS floor
  /// Superframes staged per batched flush; 0 keeps the per-frame path.
  unsigned batch_window = 0;
  /// Adaptive batch flush: when > 0 (batched path only), a delivery that
  /// brings any model group's staged inference count to this target flushes
  /// the whole batch window immediately instead of waiting for the
  /// superframe boundary — bounding `queued_latency_s` under bursty
  /// traffic. 0 keeps the fixed-window behavior bit-identical.
  std::uint64_t max_staged_batch = 0;
  /// int8 weight-streaming cost per byte (DRAM-class), paid once per model
  /// pass. Only sessions with `weight_bytes > 0` are affected.
  double energy_per_weight_byte_j = 50e-12;
  /// Execute-and-meter mode: sessions carrying a `SessionConfig::net`
  /// actually run their staged inferences through the allocation-free nn
  /// engine (`nn::Model::run_into` on the hub's workspace), and their
  /// `compute_energy_j` derives from measured kernel wall time x
  /// `compute_power_w` instead of the analytic MAC/weight-byte counts (the
  /// analytic number keeps accruing alongside in
  /// `SessionStats::analytic_compute_energy_j`). Sessions without a model
  /// stay analytic. Off by default: measured wall time is inherently
  /// host-dependent, so deterministic sweeps must keep this disabled.
  bool execute_and_meter = false;
  /// Active power of the hub's inference engine while a metered kernel
  /// runs (W). The 250 mW default is a wearable-SoC NPU/DSP class figure.
  double compute_power_w = 0.25;
  /// Analytic MAC-energy discount for int8 sessions: an int8 MAC costs
  /// roughly a quarter of an f32 MAC in silicon (Horowitz, ISSCC'14 class
  /// numbers), so sessions with `SessionConfig::precision == kInt8` charge
  /// `macs * energy_per_mac_j * int8_mac_energy_scale`. The weight term is
  /// untouched — `energy_per_weight_byte_j` already prices int8 bytes.
  /// f32 sessions never consult this, keeping their ledger bit-identical.
  double int8_mac_energy_scale = 0.25;
  /// Engine threads for execute-and-meter passes: a flush's metered
  /// sub-batches (`kMeterBatchCap` items each) fan out across a persistent
  /// `sim::TaskPool` owned by the hub, lazily spawned on the first parallel
  /// pass. Each worker runs on its own `nn::Workspace` + synth staging
  /// (both grow-only, so the zero-steady-state-allocation contract holds
  /// per thread), and per-sub-batch kernel times merge in sub-batch index
  /// order — logits and every non-wall-time stat are bit-identical to the
  /// serial path at any thread count. 1 (default) keeps the serial legacy
  /// path byte-for-byte; 0 means hardware concurrency. Inside another
  /// pool's parallel region (a `SweepRunner` sweep) the hub degrades to
  /// serial — fleet parallelism wins, thread counts never multiply.
  unsigned engine_threads = 1;
};

class Hub {
 public:
  Hub(sim::Simulator& sim, comm::TdmaBus& bus, HubConfig config = {});

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  /// Register an inference session for a stream tag.
  void add_session(SessionConfig config);

  /// Fold any still-staged windows into a final (possibly smaller) batched
  /// pass. `NetworkSim::run` calls this once after the bus stops so work
  /// staged in the last incomplete batch window is measured, not dropped.
  /// No-op on the per-frame path or when nothing is staged.
  void flush_pending(sim::Time now);

  [[nodiscard]] const SessionStats& session(const std::string& stream) const;
  [[nodiscard]] std::uint64_t frames_received() const { return frames_received_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }
  [[nodiscard]] const sim::Accumulator& delivery_latency_s() const { return latency_s_; }

  /// Batched model passes executed so far (0 on the per-frame path).
  [[nodiscard]] std::uint64_t batched_passes() const { return batched_passes_; }

  // --- Crash/restart lifecycle (driven by net::FaultInjector) ---

  /// Crash the hub at `now`: the bus stops issuing superframes, every
  /// session's staging buffer is discarded (attributed to
  /// `SessionStats::staged_frames_lost` / `staged_bytes_lost`), and the
  /// base-power ledger stops accruing. Session *configs* survive — that is
  /// the restore-on-restart contract.
  void on_hub_crash(sim::Time now);

  /// Restart the hub at `now`: sessions re-sync (counted in
  /// `SessionStats::fault_resyncs`) with empty staging state and the bus
  /// resumes beaconing on its preserved cadence.
  void on_hub_restart(sim::Time now);

  [[nodiscard]] bool up() const { return up_; }
  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }

  // --- Split execution (docs/architecture.md) ---

  /// Re-sync a session after the leaf moved its split point to `split_at`
  /// (the `Node` adaptive-split resync callback lands here). Recomputes the
  /// session's hub-suffix MACs, boundary wire size, and weight footprint
  /// from its `net`, purges the now-uncompletable staged partial window
  /// (counted in `SessionStats::repartition_dropped_bytes`), and re-groups
  /// the session under the new split key. No-op for unknown streams or
  /// sessions without an executable model (nothing to recompute from).
  void on_repartition(const std::string& stream, std::size_t split_at);

  /// Credit the leaf-venue half of a split session's inferences into its
  /// `SessionStats` (the `leaf_*` / `activation_bytes_shipped` fields).
  /// `NetworkSim::run` calls this once per split node after the bus stops,
  /// so a finished run's stats expose both venues side by side. Unknown
  /// streams are ignored (a split node need not have a hub consumer).
  void credit_leaf_compute(const std::string& stream, double kernel_time_s,
                           double compute_energy_j, double analytic_energy_j,
                           std::uint64_t inferences, std::uint64_t activation_bytes);

  /// Credit a node's degradation-controller telemetry into its session's
  /// `SessionStats` (`degradation_*` / `frames_saved_by_shedding`). Same
  /// post-run crediting pattern as `credit_leaf_compute`; unknown streams
  /// are ignored.
  void credit_degradation(const std::string& stream, std::uint64_t transitions,
                          double time_degraded_s, std::uint64_t frames_shed);

  /// Accumulated crashed time up to `now`, including an open outage.
  [[nodiscard]] double downtime_s(sim::Time now) const;

  /// Fraction of [0, now] the hub was up. 1.0 on the clean path.
  [[nodiscard]] double availability(sim::Time now) const;

  /// Total hub energy (J) up to now: bus RX/TX + sessions + base floor.
  [[nodiscard]] double energy_j() const;

  /// Average hub power (W) over the run.
  [[nodiscard]] double average_power_w() const;

  [[nodiscard]] const HubConfig& config() const { return config_; }

 private:
  /// Per-stream staging state. `pending_bytes` is the not-yet-inferred
  /// carry on both paths; `frame_times` only fills when batching.
  struct Staged {
    std::uint64_t pending_bytes = 0;
    std::vector<sim::Time> frame_times;
  };

  /// One registered session, all hot-path state co-located in a single
  /// slot: the frame-delivery path does ONE hash lookup (stream -> slot)
  /// instead of the historical three map probes (config, stats, staging),
  /// and flush/group walks index a deque instead of re-hashing tags.
  struct Session {
    SessionConfig cfg;
    SessionStats stats;
    Staged staged;
  };

  void on_frame(const comm::Frame& frame, sim::Time delivered_at);
  void on_superframe_end(sim::Time boundary);
  void flush_batches(sim::Time boundary);

  /// Staged inference count of the model group containing session `slot`
  /// (the adaptive-flush trigger quantity).
  [[nodiscard]] std::uint64_t group_staged_inferences(std::size_t slot) const;

  /// Execute `count` inferences on `net` at `precision` through the hub
  /// workspace (in sub-batches of at most kMeterBatchCap), resuming at
  /// `first_layer` (0 = whole model; a split session resumes at its
  /// boundary via `run_range_into`), and return the measured kernel wall
  /// time in seconds. Int8 sessions run the hub's `nn::QuantizedModel`
  /// lowering (built once at `add_session`). With `engine_threads > 1`
  /// (and outside any enclosing TaskPool region) the sub-batches fan out
  /// via `execute_pass_parallel`; otherwise this is the serial legacy loop.
  double execute_pass(const nn::Model& net, nn::Precision precision, std::uint64_t count,
                      std::size_t first_layer);

  /// Parallel fan-out of one metered pass: sub-batch `s` covers items
  /// [s*kMeterBatchCap, ...) and runs on whichever pool worker owns its
  /// index chunk, on that worker's thread-local workspace and synth
  /// staging. Per-sub-batch wall times land in `subbatch_time_s_[s]` and
  /// are summed in index order after the join — the returned total is the
  /// same reduction tree the serial loop computes.
  double execute_pass_parallel(const nn::Model& net, const nn::QuantizedModel* qm,
                               std::uint64_t count, std::size_t first_layer, std::size_t last,
                               std::int64_t sample_elems, std::size_t nsub, std::size_t threads);

  /// Deterministic synthetic input staging for metered passes: the frames'
  /// payload bytes are window counters, not tensor payloads, so the hub
  /// synthesizes patterned activations (kernel time is data-independent).
  /// `sample_elems` is the per-sample element count of the tensor fed in —
  /// the model input, or the boundary activation of a split session. The
  /// pattern is a pure function of element position, so any thread's
  /// staging of the same batch shape is bit-identical.
  float* synth_input(std::int64_t sample_elems, int batch);

  /// Upper bound on one metered sub-batch, bounding workspace growth.
  static constexpr std::uint64_t kMeterBatchCap = 32;

  sim::Simulator& sim_;
  comm::TdmaBus& bus_;
  HubConfig config_;
  /// Registered sessions by slot. A deque so `session()` references stay
  /// valid across later `add_session` calls (no reallocation moves).
  std::deque<Session> sessions_;
  /// Stream tag -> slot. Reserved at add_session; the delivery hot path
  /// only probes (never inserts), so steady state does zero rehashing.
  std::unordered_map<std::string, std::size_t> session_index_;
  /// Model groups in insertion order: (group key, member session slots).
  /// Iterated at flush so energy accumulation order is deterministic and
  /// compiler-independent (never hash-map order).
  std::vector<std::pair<std::string, std::vector<std::size_t>>> groups_;
  /// Session slot -> index into groups_, maintained by add_session so the
  /// adaptive-flush check on the frame-delivery hot path is a vector index
  /// plus a member walk — no string building, no group scan, no
  /// allocations.
  std::vector<std::size_t> group_of_;
  unsigned superframes_since_flush_ = 0;
  std::uint64_t batched_passes_ = 0;
  bool up_ = true;
  std::uint64_t crashes_ = 0;
  double downtime_closed_s_ = 0.0;  ///< completed outages only
  double crashed_at_ = 0.0;         ///< start of the open outage
  std::uint64_t frames_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  sim::Accumulator latency_s_;
  nn::Workspace ws_;             ///< reused across metered passes (grow-only)
  std::vector<float> synth_;     ///< patterned input staging for metered passes
  std::int64_t synth_filled_ = 0;  ///< prefix of synth_ already patterned
  /// Persistent engine pool for parallel metered passes, spawned lazily on
  /// the first pass that actually fans out (engine_threads > 1, more than
  /// one sub-batch, not nested in another pool's region).
  std::unique_ptr<sim::TaskPool> engine_pool_;
  /// Per-sub-batch kernel times of the in-flight parallel pass, merged in
  /// index order after the join. Grow-only, reused across passes.
  std::vector<double> subbatch_time_s_;
  /// Quantize-at-load cache: one `nn::QuantizedModel` per distinct source
  /// model, built when an int8 session registers under execute-and-meter
  /// (never in the metered hot path).
  std::unordered_map<const nn::Model*, std::unique_ptr<nn::QuantizedModel>> qmodels_;
};

}  // namespace iob::net
