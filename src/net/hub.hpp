#pragma once
/// \file hub.hpp
/// The on-body hub ("wearable brain", paper Fig. 1 right): terminates the
/// body bus, runs edge inference sessions over delivered streams, and
/// uplinks results to fog/cloud. The hub is the one device that keeps the
/// daily-charging battery; its energy ledger (bus RX/TX + compute + uplink)
/// is tracked so the architecture comparison can show the *system* cost,
/// not just the leaf savings.

#include <string>
#include <unordered_map>
#include <vector>

#include "comm/tdma.hpp"
#include "net/session.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace iob::net {

struct HubConfig {
  double energy_per_mac_j = 5e-12;   ///< hub silicon efficiency
  double uplink_energy_per_bit_j = 30e-9;  ///< Wi-Fi-class
  double base_power_w = 50e-3;       ///< SoC idle/display/OS floor
};

class Hub {
 public:
  Hub(sim::Simulator& sim, comm::TdmaBus& bus, HubConfig config = {});

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  /// Register an inference session for a stream tag.
  void add_session(SessionConfig config);

  [[nodiscard]] const SessionStats& session(const std::string& stream) const;
  [[nodiscard]] std::uint64_t frames_received() const { return frames_received_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }
  [[nodiscard]] const sim::Accumulator& delivery_latency_s() const { return latency_s_; }

  /// Total hub energy (J) up to now: bus RX/TX + sessions + base floor.
  [[nodiscard]] double energy_j() const;

  /// Average hub power (W) over the run.
  [[nodiscard]] double average_power_w() const;

  [[nodiscard]] const HubConfig& config() const { return config_; }

 private:
  void on_frame(const comm::Frame& frame, sim::Time delivered_at);

  sim::Simulator& sim_;
  comm::TdmaBus& bus_;
  HubConfig config_;
  std::unordered_map<std::string, SessionConfig> session_configs_;
  std::unordered_map<std::string, SessionStats> session_stats_;
  std::unordered_map<std::string, std::uint64_t> window_bytes_;
  std::uint64_t frames_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  sim::Accumulator latency_s_;
};

}  // namespace iob::net
