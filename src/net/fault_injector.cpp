#include "net/fault_injector.hpp"

#include "common/expect.hpp"

namespace iob::net {

FaultInjector::FaultInjector(sim::Simulator& sim, comm::TdmaBus& bus, Hub& hub,
                             sim::FaultPlan plan)
    : sim_(sim), bus_(bus), hub_(hub), plan_(plan), rng_(sim.rng().fork(plan.stream_id)) {
  if (plan_.burst_loss) {
    const auto& b = *plan_.burst_loss;
    IOB_EXPECTS(b.mean_good_s > 0.0 && b.mean_bad_s > 0.0,
                "burst-loss sojourn means must be positive");
    // The overlay gets its own sub-stream so enabling hub flap never shifts
    // the channel's sojourn sequence (and vice versa).
    channel_ = std::make_unique<comm::GilbertElliott>(
        comm::GilbertElliottParams{b.mean_good_s, b.mean_bad_s, b.bad_loss}, rng_.fork(1));
    bus_.set_channel_fault(channel_.get());
  }
  if (plan_.hub_flap) {
    IOB_EXPECTS(plan_.hub_flap->mean_up_s > 0.0 && plan_.hub_flap->mean_down_s > 0.0,
                "hub-flap episode means must be positive");
    schedule_crash();
  }
}

void FaultInjector::attach_node(Node& node) {
  if (plan_.brownout) node.enable_brownout(*plan_.brownout);
}

void FaultInjector::schedule_crash() {
  const auto& f = *plan_.hub_flap;
  const double delay = f.periodic ? f.mean_up_s : rng_.exponential(f.mean_up_s);
  sim_.after(delay, [this] {
    hub_.on_hub_crash(sim_.now());  // also halts the bus superframes
    schedule_restart();
  });
}

void FaultInjector::schedule_restart() {
  const auto& f = *plan_.hub_flap;
  const double delay = f.periodic ? f.mean_down_s : rng_.exponential(f.mean_down_s);
  sim_.after(delay, [this] {
    hub_.on_hub_restart(sim_.now());
    schedule_crash();
  });
}

}  // namespace iob::net
