#pragma once
/// \file uplink.hpp
/// Hub-to-cloud uplink and end-to-end query sessions (paper Sec. V: "The
/// hubs are connected to fog and cloud servers for further data
/// analytics"). Models the full AI-assistant round trip the paper's
/// Sec. II devices perform: leaf captures a query -> body bus -> hub
/// pre-processing -> cloud inference -> response downlink -> actuation at
/// the leaf (e.g. audio out at the earbud), with latency percentiles and
/// energy attribution at every hop.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "comm/tdma.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace iob::net {

/// Fog/cloud uplink model: Wi-Fi/LTE-class rate, per-bit hub energy and a
/// log-normal-ish round-trip time.
struct UplinkParams {
  double rate_bps = 20e6;
  double energy_per_bit_j = 30e-9;  ///< charged to the hub
  double rtt_mean_s = 60e-3;        ///< network + service time
  double rtt_sigma_s = 20e-3;       ///< spread (truncated at >= 1 ms)
};

class CloudUplink {
 public:
  explicit CloudUplink(UplinkParams params = {});

  /// Time (s) to ship `bytes` and receive a response of `response_bytes`,
  /// one stochastic draw (transfer + RTT).
  double sample_round_trip_s(sim::Rng& rng, std::uint32_t bytes,
                             std::uint32_t response_bytes) const;

  /// Hub-side energy (J) for the exchange.
  [[nodiscard]] double exchange_energy_j(std::uint32_t bytes, std::uint32_t response_bytes) const;

  [[nodiscard]] const UplinkParams& params() const { return params_; }

 private:
  UplinkParams params_;
};

/// An end-to-end AI-assistant query session over one body bus: queries
/// arrive at a leaf (Poisson), travel leaf->hub on the TDMA uplink, the hub
/// spends `hub_macs` of pre/post-processing, consults the cloud, and the
/// response returns hub->leaf through the TDMA downlink window.
struct QuerySessionConfig {
  comm::NodeId leaf = 1;
  double query_rate_per_s = 0.1;      ///< user queries per second
  std::uint32_t query_bytes = 400;    ///< compressed utterance / request
  std::uint32_t response_bytes = 200; ///< response payload to actuate
  std::uint64_t hub_macs = 3'000'000; ///< hub-side processing per query
  double hub_energy_per_mac_j = 5e-12;
  std::uint32_t cloud_request_bytes = 600;
  std::uint32_t cloud_response_bytes = 800;
};

/// Note: the session installs itself as the bus's delivery and downlink
/// handler and reacts only to frames on its "query" stream tag; compose
/// other consumers by chaining handlers before starting the session.
class QuerySession {
 public:
  QuerySession(sim::Simulator& sim, comm::TdmaBus& bus, CloudUplink uplink,
               QuerySessionConfig config);

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// Begin issuing queries at `t0`.
  void start(sim::Time t0 = 0.0);

  [[nodiscard]] std::uint64_t queries_issued() const { return issued_; }
  [[nodiscard]] std::uint64_t responses_delivered() const { return completed_; }
  /// End-to-end latency: query creation at the leaf -> response delivered
  /// back at the leaf.
  [[nodiscard]] const sim::Accumulator& round_trip_s() const { return round_trip_s_; }
  [[nodiscard]] double hub_energy_j() const { return hub_energy_j_; }

 private:
  void issue_query();
  void on_uplink_frame(const comm::Frame& frame, sim::Time at);
  void on_downlink_frame(const comm::Frame& frame, sim::Time at);

  sim::Simulator& sim_;
  comm::TdmaBus& bus_;
  CloudUplink uplink_;
  QuerySessionConfig config_;
  sim::Rng rng_;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  sim::Accumulator round_trip_s_;
  double hub_energy_j_ = 0.0;
  std::unordered_map<std::uint32_t, sim::Time> created_at_;  ///< seq -> t
  std::uint32_t next_seq_ = 0;
};

}  // namespace iob::net
