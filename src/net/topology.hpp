#pragma once
/// \file topology.hpp
/// Body topology: where IoB devices sit and how long the on-body channel
/// between them is. The paper's Sec. I placement list (sound near the ear,
/// controllers at the wrist, cameras on face/chest, ECG at the chest,
/// EMG/IMU on limbs) maps to named locations on a simplified body model;
/// channel length feeds the EQS and RF path models.

#include <string>

namespace iob::net {

enum class BodyLocation {
  kHead,
  kEarLeft,
  kEarRight,
  kNeck,
  kChest,
  kWaist,
  kWristLeft,
  kWristRight,
  kFingerLeft,
  kFingerRight,
  kThighLeft,
  kAnkleLeft,
  kAnkleRight,
};

/// On-body channel length (m) between two locations: body-surface routing
/// distance on a 1.75 m reference anatomy (Euclidean distance on the stick
/// model times a 1.25 surface-routing factor).
double channel_length_m(BodyLocation a, BodyLocation b);

/// Straight-line distance (m) on the stick model (for RF line-of-sight).
double euclidean_m(BodyLocation a, BodyLocation b);

std::string to_string(BodyLocation loc);

}  // namespace iob::net
