#pragma once
/// \file fault_injector.hpp
/// Executes a `sim::FaultPlan` against one network: installs the
/// Gilbert–Elliott channel overlay on the bus, drives hub crash/restart
/// episodes, and arms the brownout lifecycle on attached nodes. All
/// stochastic draws come from a stream forked off the simulator's root RNG
/// at `FaultPlan::stream_id`, so fault traces obey the same serial ==
/// parallel determinism contract as everything else (docs/determinism.md).

#include <memory>

#include "comm/gilbert_elliott.hpp"
#include "comm/tdma.hpp"
#include "net/hub.hpp"
#include "net/node.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace iob::net {

class FaultInjector {
 public:
  /// Construct before the simulation runs (episode scheduling starts at the
  /// current sim time). The bus and hub must outlive the injector.
  FaultInjector(sim::Simulator& sim, comm::TdmaBus& bus, Hub& hub, sim::FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arm the plan's brownout lifecycle on a leaf node. No-op when the plan
  /// carries no brownout process.
  void attach_node(Node& node);

  [[nodiscard]] const sim::FaultPlan& plan() const { return plan_; }

  /// The installed burst-loss overlay, or nullptr when the plan has none.
  [[nodiscard]] const comm::GilbertElliott* channel() const { return channel_.get(); }

 private:
  void schedule_crash();
  void schedule_restart();

  sim::Simulator& sim_;
  comm::TdmaBus& bus_;
  Hub& hub_;
  sim::FaultPlan plan_;
  sim::Rng rng_;  ///< hub-flap episode stream
  std::unique_ptr<comm::GilbertElliott> channel_;
};

}  // namespace iob::net
