#pragma once
/// \file network_sim.hpp
/// Turn-key distributed IoB network simulation (paper Sec. V): one body
/// bus (Wi-R by default), one hub, N leaf nodes with their sensing/ISA
/// configurations. Owns the simulator and all actors; produces a per-node
/// and hub report after `run()`. The examples and the T4 scaling bench are
/// thin wrappers over this class.

#include <memory>
#include <string>
#include <vector>

#include "comm/channel_dynamics.hpp"
#include "comm/link.hpp"
#include "comm/tdma.hpp"
#include "net/fault_injector.hpp"
#include "net/hub.hpp"
#include "net/node.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace iob::net {

struct NetworkConfig {
  std::uint64_t seed = 42;
  comm::TdmaConfig mac{};
  HubConfig hub{};
  bool trace = false;
  /// Fault schedule (docs/robustness.md). The default empty plan injects
  /// nothing and keeps every report bit-identical to the pre-fault code.
  sim::FaultPlan faults{};
  /// Continuous channel hostility — SIR interference and body-motion
  /// fading (docs/robustness.md). The default disengaged config installs
  /// nothing and keeps every report bit-identical to the clean channel.
  comm::ChannelDynamicsConfig dynamics{};
};

/// Post-run summary for one node.
struct NodeReport {
  std::string name;
  double average_power_w = 0.0;
  double comm_power_w = 0.0;
  double sense_power_w = 0.0;
  double isa_power_w = 0.0;
  double projected_life_days = 0.0;  ///< +inf encoded as huge for printing
  bool perpetual = false;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;
  double mean_latency_s = 0.0;
  double p99ish_latency_s = 0.0;  ///< max observed (small samples)
  // Drop taxonomy: the five buckets always sum to `frames_dropped`
  // (`dropped_arq` is the only non-zero one on an unsaturated clean path;
  // `dropped_overflow` is hub-down store-and-retry overflow,
  // `dropped_overflow_clean` is normal-operation saturation, and
  // `dropped_shed` is the degradation ladder's deliberate duty-cycling).
  std::uint64_t dropped_arq = 0;
  std::uint64_t dropped_fault = 0;
  std::uint64_t dropped_overflow = 0;
  std::uint64_t dropped_overflow_clean = 0;
  std::uint64_t dropped_shed = 0;
  // Brownout lifecycle (all trivial without a fault plan).
  double availability = 1.0;  ///< powered fraction of the run
  double downtime_s = 0.0;
  double mttr_s = 0.0;        ///< mean time to repair per brownout episode
  std::uint64_t reboots = 0;
  // Split execution (all zero without NodeConfig::split).
  std::uint64_t split_inferences = 0;       ///< leaf prefix executions
  std::uint64_t split_activation_bytes = 0; ///< boundary wire bytes shipped
  double split_compute_energy_j = 0.0;      ///< leaf prefix energy charged
  std::uint64_t split_repartitions = 0;     ///< adaptive split-point moves
  std::uint64_t split_at = 0;               ///< final split point k
  // Graceful degradation (all zero without NodeConfig::degradation).
  std::uint64_t degradation_step = 0;        ///< final ladder rung
  std::uint64_t degradation_max_step = 0;    ///< deepest rung reached
  std::uint64_t degradation_transitions = 0; ///< ladder moves (both ways)
  double time_degraded_s = 0.0;              ///< seconds on any rung > 0
  double degradation_recovery_s = 0.0;       ///< time of last return to rung 0
};

struct NetworkReport {
  std::vector<NodeReport> nodes;
  double hub_power_w = 0.0;
  double aggregate_goodput_bps = 0.0;
  double bus_utilization = 0.0;
  double elapsed_s = 0.0;
  // Hub crash/restart lifecycle (clean path: 0 crashes, availability 1).
  std::uint64_t hub_crashes = 0;
  double hub_downtime_s = 0.0;
  double hub_availability = 1.0;
};

class NetworkSim {
 public:
  /// \param link body-bus link shared by all nodes (not owned; must outlive
  ///        the simulation)
  NetworkSim(const comm::Link& link, NetworkConfig config = {});

  /// Owning overload: the simulation takes the link with it, so a value-type
  /// point spec (e.g. `core::FleetPoint`) can build a self-contained sim
  /// with no external lifetime to manage. Used by the fleet harness, where
  /// thousands of points each construct their own link.
  explicit NetworkSim(std::unique_ptr<const comm::Link> link, NetworkConfig config = {});

  /// Add a leaf node; returns its index.
  std::size_t add_node(NodeConfig config);

  /// Add a hub inference session.
  void add_session(SessionConfig config);

  /// Run for `duration_s` simulated seconds (can be called once).
  NetworkReport run(double duration_s);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] Hub& hub() { return *hub_; }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const comm::TdmaBus& bus() const { return bus_; }
  [[nodiscard]] const sim::TraceSink& trace() const { return trace_; }

 private:
  /// Event-queue warm-up sizing used by `run()` (via `EventQueue::reserve`):
  /// steady state holds ~2 pending events per node (one traffic-source
  /// occurrence + one energy-settle occurrence) plus the superframe chain
  /// and hub/trace bookkeeping, so `kEventsBase + kEventsPerNode * nodes`
  /// pre-sizes the slab/heap with ~2x headroom for ARQ retry and downlink
  /// bursts — the warm-up phase of even a large network never reallocates.
  static constexpr std::size_t kEventsBase = 16;
  static constexpr std::size_t kEventsPerNode = 4;

  sim::Simulator sim_;
  sim::TraceSink trace_;
  std::unique_ptr<const comm::Link> owned_link_;  ///< set by the owning ctor
  const comm::Link& link_;
  comm::TdmaBus bus_;
  std::unique_ptr<Hub> hub_;
  std::vector<std::unique_ptr<Node>> nodes_;
  sim::FaultPlan faults_;
  std::unique_ptr<FaultInjector> fault_;  ///< created by run() when faults_.any()
  comm::ChannelDynamicsConfig dynamics_cfg_;
  std::unique_ptr<comm::ChannelDynamics> dynamics_;  ///< created by run() when any()
  bool ran_ = false;
};

}  // namespace iob::net
