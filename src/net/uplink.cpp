#include "net/uplink.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"

namespace iob::net {

CloudUplink::CloudUplink(UplinkParams params) : params_(params) {
  IOB_EXPECTS(params_.rate_bps > 0, "uplink rate must be positive");
  IOB_EXPECTS(params_.energy_per_bit_j >= 0, "uplink energy must be non-negative");
  IOB_EXPECTS(params_.rtt_mean_s > 0, "RTT mean must be positive");
}

double CloudUplink::sample_round_trip_s(sim::Rng& rng, std::uint32_t bytes,
                                        std::uint32_t response_bytes) const {
  const double transfer =
      static_cast<double>(bytes + response_bytes) * 8.0 / params_.rate_bps;
  const double rtt = std::max(1e-3, rng.normal(params_.rtt_mean_s, params_.rtt_sigma_s));
  return transfer + rtt;
}

double CloudUplink::exchange_energy_j(std::uint32_t bytes, std::uint32_t response_bytes) const {
  return static_cast<double>(bytes + response_bytes) * 8.0 * params_.energy_per_bit_j;
}

QuerySession::QuerySession(sim::Simulator& sim, comm::TdmaBus& bus, CloudUplink uplink,
                           QuerySessionConfig config)
    : sim_(sim),
      bus_(bus),
      uplink_(std::move(uplink)),
      config_(config),
      rng_(sim.rng().fork(0x9e41)) {
  IOB_EXPECTS(config_.query_rate_per_s > 0, "query rate must be positive");
  IOB_EXPECTS(config_.leaf >= 1, "leaf id must be valid");
  bus_.set_delivery_handler(
      [this](const comm::Frame& f, sim::Time t) { on_uplink_frame(f, t); });
  bus_.set_downlink_handler(
      [this](const comm::Frame& f, sim::Time t) { on_downlink_frame(f, t); });
}

void QuerySession::start(sim::Time t0) {
  sim_.at(t0 + rng_.exponential(1.0 / config_.query_rate_per_s), [this] { issue_query(); });
}

void QuerySession::issue_query() {
  comm::Frame f;
  f.kind = comm::FrameKind::kData;
  f.stream = "query";
  f.seq = next_seq_++;
  f.payload_bytes = config_.query_bytes;
  f.created_s = sim_.now();
  created_at_[f.seq] = f.created_s;
  ++issued_;
  bus_.enqueue(config_.leaf, std::move(f));

  sim_.after(rng_.exponential(1.0 / config_.query_rate_per_s), [this] { issue_query(); });
}

void QuerySession::on_uplink_frame(const comm::Frame& frame, sim::Time) {
  if (frame.stream != "query") return;

  // Hub-side processing + cloud consultation.
  hub_energy_j_ += static_cast<double>(config_.hub_macs) * config_.hub_energy_per_mac_j +
                   uplink_.exchange_energy_j(config_.cloud_request_bytes,
                                             config_.cloud_response_bytes);
  const double cloud_delay = uplink_.sample_round_trip_s(rng_, config_.cloud_request_bytes,
                                                         config_.cloud_response_bytes);

  const std::uint32_t seq = frame.seq;
  sim_.after(cloud_delay, [this, seq] {
    comm::Frame response;
    response.kind = comm::FrameKind::kData;
    response.stream = "query";
    response.seq = seq;
    response.payload_bytes = config_.response_bytes;
    response.created_s = sim_.now();
    bus_.enqueue_downlink(config_.leaf, std::move(response));
  });
}

void QuerySession::on_downlink_frame(const comm::Frame& frame, sim::Time at) {
  if (frame.stream != "query") return;
  const auto it = created_at_.find(frame.seq);
  if (it == created_at_.end()) return;
  round_trip_s_.add(at - it->second);
  created_at_.erase(it);
  ++completed_;
}

}  // namespace iob::net
