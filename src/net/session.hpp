#pragma once
/// \file session.hpp
/// Hub-side stream sessions: what the "wearable brain" does with each
/// delivered stream. A session accumulates payload bytes and triggers one
/// model inference per `bytes_per_inference` (e.g. one KWS pass per audio
/// window), charging hub compute energy and tracking inference latency.

#include <cstdint>
#include <string>

namespace iob::net {

struct SessionConfig {
  std::string stream;                 ///< stream tag this session consumes
  std::uint64_t macs_per_inference = 0;
  std::uint64_t bytes_per_inference = 1;  ///< window size triggering a pass
  bool forward_to_cloud = false;      ///< uplink results (adds hub TX energy)
  std::uint32_t result_bytes = 16;    ///< classification result size
};

struct SessionStats {
  std::uint64_t bytes_in = 0;
  std::uint64_t inferences = 0;
  double compute_energy_j = 0.0;
  double uplink_energy_j = 0.0;
};

}  // namespace iob::net
