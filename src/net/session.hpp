#pragma once
/// \file session.hpp
/// Hub-side stream sessions: what the "wearable brain" does with each
/// delivered stream. A session accumulates payload bytes and triggers one
/// model inference per `bytes_per_inference` (e.g. one KWS pass per audio
/// window), charging hub compute energy and tracking inference latency.
///
/// Compute energy has two components: the per-sample MAC cost and the int8
/// weight-streaming cost (`weight_bytes`). In the per-frame path the
/// weights are re-streamed for every inference; the hub's superframe
/// batching engine folds concurrent sessions that share a `model` into one
/// batched pass, so each inference in a batch of N pays only
/// `weight_cost / N + per_sample_cost` — the server-side batching
/// amortization, on-body.

#include <cstdint>
#include <string>

#include "nn/precision.hpp"
#include "sim/stats.hpp"

namespace iob::nn {
class Model;
}

namespace iob::net {

struct SessionConfig {
  std::string stream;                 ///< stream tag this session consumes
  std::uint64_t macs_per_inference = 0;
  std::uint64_t bytes_per_inference = 1;  ///< window size triggering a pass
  bool forward_to_cloud = false;      ///< uplink results (adds hub TX energy)
  std::uint32_t result_bytes = 16;    ///< classification result size
  /// Model identity: sessions sharing a non-empty tag fold into one batched
  /// pass per flush (they run the same network). Empty = private model.
  std::string model;
  /// int8 weight footprint streamed per model pass (0 = weight traffic not
  /// modelled; keeps pre-batching energy numbers bit-identical).
  std::uint64_t weight_bytes = 0;
  /// Executable network behind this session (not owned; must outlive the
  /// hub). When `HubConfig::execute_and_meter` is on, the hub runs every
  /// staged inference through this model's allocation-free engine
  /// (`nn::Model::run_into`) and derives compute energy from the measured
  /// kernel time; nullptr keeps the session analytic-only. Sessions
  /// sharing a `model` tag must point at the same instance (they fold into
  /// one batched pass; the hub's flush enforces this).
  const nn::Model* net = nullptr;
  /// Execution precision of this session's inferences — the same
  /// `nn::Precision` the partitioner's transport flag derives from. With
  /// `kInt8` the analytic ledger discounts MAC energy by
  /// `HubConfig::int8_mac_energy_scale` (the weight-streaming term is
  /// already int8-priced), and execute-and-meter runs the staged
  /// inferences through the hub's `nn::QuantizedModel` lowering of `net`
  /// instead of the f32 engine — the meter finally measures the precision
  /// the weight-energy model prices. `kF32` keeps every energy number
  /// bit-identical to the pre-precision ledger.
  nn::Precision precision = nn::Precision::kF32;
  /// Split execution (docs/architecture.md): first model layer the hub runs.
  /// 0 (the default) keeps the whole-model path bit-identical. When > 0 the
  /// leaf executes layers [0, split_layers) and ships the boundary
  /// activation (`nn::activation_wire_bytes`-sized — the caller sets
  /// `bytes_per_inference` to that wire size, `macs_per_inference` to the
  /// suffix MACs, and `weight_bytes` to the suffix footprint); under
  /// execute-and-meter the hub resumes at this layer via `run_range_into`.
  /// For int8 metered sessions the boundary must be feasible
  /// (`QuantizedModel::feasible_boundary` — not inside a fused conv+relu
  /// pair); `Hub::add_session` enforces it.
  std::size_t split_layers = 0;
};

struct SessionStats {
  std::uint64_t bytes_in = 0;
  std::uint64_t inferences = 0;
  double compute_energy_j = 0.0;   ///< per-sample MACs + (amortized) weight streaming
  double uplink_energy_j = 0.0;
  /// Inferences executed through the superframe-batched engine (subset of
  /// `inferences`; 0 on the per-frame path).
  std::uint64_t batched_inferences = 0;
  /// Batched model passes this session participated in.
  std::uint64_t batched_passes = 0;
  /// Portion of `compute_energy_j` accrued via batched passes.
  double batched_compute_energy_j = 0.0;
  /// Staging delay the batch window adds: delivery -> superframe flush,
  /// one sample per staged frame.
  sim::Accumulator queued_latency_s;
  /// Measured kernel wall time attributed to this session (s): each
  /// executed pass's time split by inference share. 0 unless the hub runs
  /// in execute-and-meter mode with `SessionConfig::net` set.
  double kernel_time_s = 0.0;
  /// Inferences that actually executed on the nn engine (execute-and-meter
  /// mode only; subset of `inferences`).
  std::uint64_t executed_inferences = 0;
  /// What the analytic MAC/weight-byte model would have charged. On the
  /// analytic path this equals `compute_energy_j` exactly; in
  /// execute-and-meter mode it runs alongside the measured number so the
  /// two energy models can be compared point-for-point.
  double analytic_compute_energy_j = 0.0;
  /// Per-precision split of `compute_energy_j`: every charge lands in the
  /// bucket of the session's `SessionConfig::precision`, on both the
  /// analytic and the metered path (the two buckets sum to
  /// `compute_energy_j`).
  double compute_energy_f32_j = 0.0;
  double compute_energy_int8_j = 0.0;
  /// Per-precision split of `kernel_time_s` (execute-and-meter only).
  double kernel_time_f32_s = 0.0;
  double kernel_time_int8_s = 0.0;
  // --- Fault attribution (docs/robustness.md; all zero on the clean path) ---
  /// Frames that sat staged at the hub when it crashed (lost work: they
  /// were delivered over the bus but never inferred).
  std::uint64_t staged_frames_lost = 0;
  /// Staging-buffer bytes discarded by hub crashes (includes the partial
  /// window carried on the per-frame path).
  std::uint64_t staged_bytes_lost = 0;
  /// Hub restarts this session was re-synced through (its config survives
  /// the crash; the staging state does not).
  std::uint64_t fault_resyncs = 0;
  // --- Split execution (docs/architecture.md; all zero without a split) ---
  /// Leaf-venue prefix executions credited to this session by the simulator
  /// after the run (the other half of the split inference).
  std::uint64_t leaf_inferences = 0;
  /// Measured leaf prefix kernel time (execute-and-meter leaves only).
  double leaf_kernel_time_s = 0.0;
  /// Leaf compute energy actually charged to the node battery for the
  /// prefix (metered when the leaf meters, else the analytic ledger).
  double leaf_compute_energy_j = 0.0;
  /// What the analytic prefix ledger (MACs x energy/MAC) charges; equals
  /// `leaf_compute_energy_j` on the analytic path.
  double leaf_analytic_compute_energy_j = 0.0;
  /// Boundary-activation wire bytes the leaf shipped (serialized tensor
  /// size x inferences — the differential test pins this to
  /// `nn::activation_wire_bytes`).
  std::uint64_t activation_bytes_shipped = 0;
  /// Adaptive split re-syncs the hub processed for this session.
  std::uint64_t repartitions = 0;
  /// Partial staged windows purged on re-partition (the old boundary size
  /// can no longer complete; counted here, not silently re-interpreted).
  std::uint64_t repartition_dropped_bytes = 0;
  // --- Graceful degradation (docs/robustness.md; zero without a
  // --- net::DegradationController on the session's node) ---
  /// Ladder transitions the node's controller took (both directions).
  std::uint64_t degradation_transitions = 0;
  /// Seconds the node spent on any rung > 0.
  double degradation_time_s = 0.0;
  /// Frames the ladder's duty-cycle shedding deliberately withheld —
  /// airtime bought back for the frames that did fly.
  std::uint64_t frames_saved_by_shedding = 0;
};

}  // namespace iob::net
