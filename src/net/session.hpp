#pragma once
/// \file session.hpp
/// Hub-side stream sessions: what the "wearable brain" does with each
/// delivered stream. A session accumulates payload bytes and triggers one
/// model inference per `bytes_per_inference` (e.g. one KWS pass per audio
/// window), charging hub compute energy and tracking inference latency.
///
/// Compute energy has two components: the per-sample MAC cost and the int8
/// weight-streaming cost (`weight_bytes`). In the per-frame path the
/// weights are re-streamed for every inference; the hub's superframe
/// batching engine folds concurrent sessions that share a `model` into one
/// batched pass, so each inference in a batch of N pays only
/// `weight_cost / N + per_sample_cost` — the server-side batching
/// amortization, on-body.

#include <cstdint>
#include <string>

#include "nn/precision.hpp"
#include "sim/stats.hpp"

namespace iob::nn {
class Model;
}

namespace iob::net {

struct SessionConfig {
  std::string stream;                 ///< stream tag this session consumes
  std::uint64_t macs_per_inference = 0;
  std::uint64_t bytes_per_inference = 1;  ///< window size triggering a pass
  bool forward_to_cloud = false;      ///< uplink results (adds hub TX energy)
  std::uint32_t result_bytes = 16;    ///< classification result size
  /// Model identity: sessions sharing a non-empty tag fold into one batched
  /// pass per flush (they run the same network). Empty = private model.
  std::string model;
  /// int8 weight footprint streamed per model pass (0 = weight traffic not
  /// modelled; keeps pre-batching energy numbers bit-identical).
  std::uint64_t weight_bytes = 0;
  /// Executable network behind this session (not owned; must outlive the
  /// hub). When `HubConfig::execute_and_meter` is on, the hub runs every
  /// staged inference through this model's allocation-free engine
  /// (`nn::Model::run_into`) and derives compute energy from the measured
  /// kernel time; nullptr keeps the session analytic-only. Sessions
  /// sharing a `model` tag must point at the same instance (they fold into
  /// one batched pass; the hub's flush enforces this).
  const nn::Model* net = nullptr;
  /// Execution precision of this session's inferences — the same
  /// `nn::Precision` the partitioner's transport flag derives from. With
  /// `kInt8` the analytic ledger discounts MAC energy by
  /// `HubConfig::int8_mac_energy_scale` (the weight-streaming term is
  /// already int8-priced), and execute-and-meter runs the staged
  /// inferences through the hub's `nn::QuantizedModel` lowering of `net`
  /// instead of the f32 engine — the meter finally measures the precision
  /// the weight-energy model prices. `kF32` keeps every energy number
  /// bit-identical to the pre-precision ledger.
  nn::Precision precision = nn::Precision::kF32;
};

struct SessionStats {
  std::uint64_t bytes_in = 0;
  std::uint64_t inferences = 0;
  double compute_energy_j = 0.0;   ///< per-sample MACs + (amortized) weight streaming
  double uplink_energy_j = 0.0;
  /// Inferences executed through the superframe-batched engine (subset of
  /// `inferences`; 0 on the per-frame path).
  std::uint64_t batched_inferences = 0;
  /// Batched model passes this session participated in.
  std::uint64_t batched_passes = 0;
  /// Portion of `compute_energy_j` accrued via batched passes.
  double batched_compute_energy_j = 0.0;
  /// Staging delay the batch window adds: delivery -> superframe flush,
  /// one sample per staged frame.
  sim::Accumulator queued_latency_s;
  /// Measured kernel wall time attributed to this session (s): each
  /// executed pass's time split by inference share. 0 unless the hub runs
  /// in execute-and-meter mode with `SessionConfig::net` set.
  double kernel_time_s = 0.0;
  /// Inferences that actually executed on the nn engine (execute-and-meter
  /// mode only; subset of `inferences`).
  std::uint64_t executed_inferences = 0;
  /// What the analytic MAC/weight-byte model would have charged. On the
  /// analytic path this equals `compute_energy_j` exactly; in
  /// execute-and-meter mode it runs alongside the measured number so the
  /// two energy models can be compared point-for-point.
  double analytic_compute_energy_j = 0.0;
  /// Per-precision split of `compute_energy_j`: every charge lands in the
  /// bucket of the session's `SessionConfig::precision`, on both the
  /// analytic and the metered path (the two buckets sum to
  /// `compute_energy_j`).
  double compute_energy_f32_j = 0.0;
  double compute_energy_int8_j = 0.0;
  /// Per-precision split of `kernel_time_s` (execute-and-meter only).
  double kernel_time_f32_s = 0.0;
  double kernel_time_int8_s = 0.0;
  // --- Fault attribution (docs/robustness.md; all zero on the clean path) ---
  /// Frames that sat staged at the hub when it crashed (lost work: they
  /// were delivered over the bus but never inferred).
  std::uint64_t staged_frames_lost = 0;
  /// Staging-buffer bytes discarded by hub crashes (includes the partial
  /// window carried on the per-frame path).
  std::uint64_t staged_bytes_lost = 0;
  /// Hub restarts this session was re-synced through (its config survives
  /// the crash; the staging state does not).
  std::uint64_t fault_resyncs = 0;
};

}  // namespace iob::net
