#include "net/node.hpp"

#include <limits>

#include "common/expect.hpp"

namespace iob::net {

Node::Node(sim::Simulator& sim, comm::TdmaBus& bus, NodeConfig config)
    : sim_(sim),
      bus_(bus),
      config_(std::move(config)),
      battery_(config_.battery_mah, config_.battery_v),
      rng_(sim.rng().fork(std::hash<std::string>{}(config_.name))) {
  IOB_EXPECTS(config_.output_rate_bps > 0, "output rate must be positive");
  IOB_EXPECTS(config_.frame_bytes > 0, "frame size must be positive");
  IOB_EXPECTS(config_.settle_period_s > 0, "settle period must be positive");
  IOB_EXPECTS(config_.phase_s >= 0, "traffic phase must be non-negative");

  if (config_.harvester) harvester_.emplace(*config_.harvester);

  mac_id_ = bus_.add_node(config_.name, config_.slot_weight);

  // Frame source: period chosen so payload bits match the output rate.
  source_ = std::make_unique<workload::PeriodicSource>(
      sim_, frame_period_s(), config_.frame_bytes,
      [this](sim::Time t, std::uint32_t bytes) {
        if (!powered_) return;            // browned-out node is silent
        if (battery_.depleted()) return;  // dead node stops transmitting
        comm::Frame f;
        f.kind = comm::FrameKind::kData;
        f.seq = seq_++;
        f.payload_bytes = bytes;
        f.created_s = t;
        f.stream = config_.stream;
        bus_.enqueue(mac_id_, std::move(f));
      },
      config_.phase_s);

  // Energy-ledger settlement.
  sim_.every(config_.settle_period_s, config_.settle_period_s, [this](sim::Time) { settle(); });
}

double Node::frame_period_s() const {
  return static_cast<double>(config_.frame_bytes) * 8.0 / config_.output_rate_bps;
}

void Node::enable_brownout(const sim::BrownoutPlan& plan) {
  IOB_EXPECTS(plan.off_soc >= 0.0 && plan.off_soc < 1.0, "off threshold must be a SoC fraction");
  IOB_EXPECTS(plan.on_soc > plan.off_soc && plan.on_soc <= 1.0,
              "reboot threshold needs hysteresis above the off threshold");
  IOB_EXPECTS(plan.reboot_energy_j >= 0.0, "reboot energy must be non-negative");
  IOB_EXPECTS(plan.sleep_power_w >= 0.0, "sleep power must be non-negative");
  brownout_ = plan;
}

void Node::settle() {
  const double now = sim_.now();
  const double dt = now - last_settle_t_;
  if (dt <= 0) return;
  last_settle_t_ = now;

  // Sense + ISA integrate over wall time; comm is the MAC ledger delta.
  // While browned out only the sleep floor burns (the MAC delta is zero
  // anyway: the bus skips unpowered nodes).
  const auto& mac = bus_.stats().nodes[mac_id_ - 1];
  const double comm_total = mac.tx_energy_j + mac.rx_energy_j;
  const double comm_delta = comm_total - settled_comm_j_;
  settled_comm_j_ = comm_total;

  const double static_w =
      powered_ ? config_.sense_power_w + config_.isa_power_w : brownout_->sleep_power_w;
  const double spend = static_w * dt + comm_delta;
  consumed_j_ += spend;
  battery_.discharge(spend);

  if (harvester_) {
    const double gain = harvester_->sample_energy_j(rng_, dt, now);
    harvested_j_ += gain;
    battery_.charge(gain);
  }

  if (brownout_) update_power_state(now);
}

void Node::update_power_state(double now) {
  if (powered_ && battery_.soc() < brownout_->off_soc) {
    powered_ = false;
    powered_off_at_ = now;
    bus_.set_node_powered(mac_id_, false);
  } else if (!powered_ && battery_.soc() >= brownout_->on_soc) {
    // Boot cost is paid out of the recharge margin; `on_soc - off_soc`
    // hysteresis is what keeps this from oscillating (see BrownoutPlan).
    battery_.discharge(brownout_->reboot_energy_j);
    powered_ = true;
    ++reboots_;
    downtime_closed_s_ += now - powered_off_at_;
    bus_.set_node_powered(mac_id_, true);
  }
}

double Node::downtime_s(double now) const {
  return downtime_closed_s_ + (powered_ ? 0.0 : now - powered_off_at_);
}

double Node::availability(double now) const {
  if (now <= 0.0) return 1.0;
  return 1.0 - downtime_s(now) / now;
}

double Node::mttr_s(double now) const {
  const std::uint64_t episodes = reboots_ + (powered_ ? 0 : 1);
  if (episodes == 0) return 0.0;
  return downtime_s(now) / static_cast<double>(episodes);
}

double Node::average_power_w() const {
  const double t = sim_.now();
  if (t <= 0) return 0.0;
  // Include not-yet-settled MAC energy for an up-to-date figure.
  const auto& mac = bus_.stats().nodes[mac_id_ - 1];
  const double comm_total = mac.tx_energy_j + mac.rx_energy_j;
  const double unsettled_comm = comm_total - settled_comm_j_;
  const double static_w =
      powered_ ? config_.sense_power_w + config_.isa_power_w : brownout_->sleep_power_w;
  const double unsettled_static = static_w * (t - last_settle_t_);
  return (consumed_j_ + unsettled_comm + unsettled_static) / t;
}

double Node::comm_power_w() const {
  const double t = sim_.now();
  if (t <= 0) return 0.0;
  const auto& mac = bus_.stats().nodes[mac_id_ - 1];
  return (mac.tx_energy_j + mac.rx_energy_j) / t;
}

double Node::projected_life_s() const {
  const double p = average_power_w();
  const double h = harvester_ ? harvester_->average_power_w() : 0.0;
  const double net = p - h;
  if (net <= 0) return std::numeric_limits<double>::infinity();
  return battery_.remaining_j() / net;
}

}  // namespace iob::net
