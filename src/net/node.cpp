#include "net/node.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/expect.hpp"
#include "nn/model.hpp"
#include "nn/qmodel.hpp"
#include "nn/quantize.hpp"

namespace iob::net {

namespace {

double wall_clock_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Node::Node(sim::Simulator& sim, comm::TdmaBus& bus, NodeConfig config)
    : sim_(sim),
      bus_(bus),
      config_(std::move(config)),
      battery_(config_.battery_mah, config_.battery_v),
      rng_(sim.rng().fork(std::hash<std::string>{}(config_.name))) {
  IOB_EXPECTS(config_.output_rate_bps > 0, "output rate must be positive");
  IOB_EXPECTS(config_.frame_bytes > 0, "frame size must be positive");
  IOB_EXPECTS(config_.settle_period_s > 0, "settle period must be positive");
  IOB_EXPECTS(config_.phase_s >= 0, "traffic phase must be non-negative");

  if (config_.harvester) harvester_.emplace(*config_.harvester);

  mac_id_ = bus_.add_node(config_.name, config_.slot_weight);

  if (config_.degradation) deg_ctrl_.emplace(*config_.degradation);

  if (config_.split) {
    const LeafSplit& sp = *config_.split;
    IOB_EXPECTS(sp.net != nullptr, "leaf split needs a model");
    IOB_EXPECTS(sp.period_s > 0, "split inference period must be positive");
    IOB_EXPECTS(sp.energy_per_mac_j >= 0, "leaf energy per MAC must be non-negative");
    IOB_EXPECTS(sp.compute_power_w >= 0, "leaf compute power must be non-negative");
    if (sp.execute_and_meter && sp.precision == nn::Precision::kInt8) {
      IOB_EXPECTS(sp.qnet != nullptr, "int8 metered split needs the quantized model");
    }
    split_precision_ = sp.precision;
    if (sp.adaptive) split_ctrl_.emplace(*sp.adaptive);
    apply_split(split_ctrl_ ? split_ctrl_->current().split_at : sp.split_at);
    // Split traffic source: one prefix execution + boundary-activation
    // shipment per inference period (the payload argument is unused — the
    // wire size is the serialized activation, fragmented at enqueue time).
    source_ = std::make_unique<workload::PeriodicSource>(
        sim_, sp.period_s, config_.frame_bytes,
        [this](sim::Time t, std::uint32_t) {
          if (!powered_) return;            // browned-out node is silent
          if (battery_.depleted()) return;  // dead node stops inferring
          if (shed_this_event()) return;    // degradation ladder duty-cycling
          run_split_inference(t);
        },
        config_.phase_s);
  } else {
    // Frame source: period chosen so payload bits match the output rate.
    source_ = std::make_unique<workload::PeriodicSource>(
        sim_, frame_period_s(), config_.frame_bytes,
        [this](sim::Time t, std::uint32_t bytes) {
          if (!powered_) return;            // browned-out node is silent
          if (battery_.depleted()) return;  // dead node stops transmitting
          if (shed_this_event()) return;    // degradation ladder duty-cycling
          comm::Frame f;
          f.kind = comm::FrameKind::kData;
          f.seq = seq_++;
          // A downgraded codec emits smaller payloads at the same cadence
          // (rung 0 keeps the source's own size bit-identical).
          f.payload_bytes = eff_frame_bytes_ != 0 ? eff_frame_bytes_ : bytes;
          f.created_s = t;
          f.stream = config_.stream;
          bus_.enqueue(mac_id_, std::move(f));
        },
        config_.phase_s);
  }

  // Energy-ledger settlement.
  sim_.every(config_.settle_period_s, config_.settle_period_s, [this](sim::Time) { settle(); });
}

double Node::frame_period_s() const {
  return static_cast<double>(config_.frame_bytes) * 8.0 / config_.output_rate_bps;
}

void Node::apply_split(std::size_t k) {
  const LeafSplit& sp = *config_.split;
  IOB_EXPECTS(k <= sp.net->layer_count(), "split point out of range");
  if (sp.execute_and_meter && sp.precision == nn::Precision::kInt8 && k > 0) {
    IOB_EXPECTS(sp.qnet->feasible_boundary(k),
                "int8 split boundary must be feasible (not inside a fused pair)");
  }
  cur_split_ = k;
  split_stats_.split_at = k;
  const auto& profiles = sp.net->profiles();
  prefix_macs_ = 0;
  for (std::size_t i = 0; i < k; ++i) prefix_macs_ += profiles[i].macs;
  // The shipped payload is the *serialized* boundary activation — the same
  // bytes `nn::serialize_activation` would produce, header included. k == 0
  // ships the raw model input; k == n ships the final logits.
  // `split_precision_` is the configured precision unless the degradation
  // ladder forced the int8 wire format.
  const std::int64_t elems = k == 0 ? nn::shape_elems(sp.net->input_shape())
                                    : nn::shape_elems(profiles[k - 1].output_shape);
  wire_bytes_ = static_cast<std::uint64_t>(nn::activation_wire_bytes(elems, split_precision_));
}

bool Node::shed_this_event() {
  if (shed_modulus_ <= 1) return false;
  if ((shed_counter_++ % shed_modulus_) == 0) return false;  // this one flies
  bus_.count_shed(mac_id_);
  return true;
}

void Node::apply_degradation(const DegradationStep& step) {
  eff_frame_bytes_ =
      step.bitrate_scale >= 1.0
          ? 0
          : std::max<std::uint32_t>(
                1, static_cast<std::uint32_t>(static_cast<double>(config_.frame_bytes) *
                                                  step.bitrate_scale +
                                              0.5));
  shed_modulus_ = std::max(1u, step.shed_modulus);
  if (!config_.split) return;
  const LeafSplit& sp = *config_.split;
  const nn::Precision want_p = step.int8_wire ? nn::Precision::kInt8 : sp.precision;
  std::size_t want_k = cur_split_;
  if (step.hub_only_split) {
    if (!deg_hub_only_) {
      deg_saved_split_ = cur_split_;  // restore target for recovery
      deg_hub_only_ = true;
    }
    want_k = 0;
  } else if (deg_hub_only_) {
    deg_hub_only_ = false;
    want_k = deg_saved_split_;
  }
  const bool k_changed = want_k != cur_split_;
  if (want_p != split_precision_ || k_changed) {
    split_precision_ = want_p;
    apply_split(want_k);
    if (k_changed && split_resync_) split_resync_(config_.stream, want_k);
  }
}

void Node::run_split_inference(double t) {
  const LeafSplit& sp = *config_.split;
  ++split_stats_.inferences;
  const double analytic = static_cast<double>(prefix_macs_) * sp.energy_per_mac_j;
  split_stats_.analytic_compute_energy_j += analytic;
  double charged = analytic;
  if (sp.execute_and_meter && cur_split_ > 0) {
    const double dt = run_prefix_metered();
    split_stats_.kernel_time_s += dt;
    charged = dt * sp.compute_power_w;
  }
  split_stats_.compute_energy_j += charged;  // battery-charged at settle

  // Ship the boundary activation, fragmented to the bus MTU (the TDMA bus
  // requires each frame to fit one slot).
  std::uint64_t remaining = wire_bytes_;
  while (remaining > 0) {
    const std::uint32_t chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, config_.frame_bytes));
    comm::Frame f;
    f.kind = comm::FrameKind::kData;
    f.seq = seq_++;
    f.payload_bytes = chunk;
    f.created_s = t;
    f.stream = config_.stream;
    bus_.enqueue(mac_id_, std::move(f));
    split_stats_.activation_bytes += chunk;
    remaining -= chunk;
  }
}

double Node::run_prefix_metered() {
  const LeafSplit& sp = *config_.split;
  const std::int64_t elems = nn::shape_elems(sp.net->input_shape());
  if (static_cast<std::int64_t>(split_synth_.size()) < elems) {
    // Same deterministic pattern as the hub's metered staging: kernel time
    // is data-independent, each element filled exactly once.
    const std::size_t old = split_synth_.size();
    split_synth_.resize(static_cast<std::size_t>(elems));
    for (std::size_t i = old; i < split_synth_.size(); ++i) {
      split_synth_[i] =
          static_cast<float>((static_cast<std::uint64_t>(i) * 2654435761ULL) % 1024ULL) / 512.0f -
          1.0f;
    }
  }
  // Size the arena outside the timed region (one-time growth is setup cost).
  if (sp.precision == nn::Precision::kInt8) {
    split_ws_.configure(*sp.qnet, 1);
  } else {
    split_ws_.configure(*sp.net, 1);
  }
  const double t0 = wall_clock_s();
  const nn::ConstSpan out =
      sp.precision == nn::Precision::kInt8
          ? sp.qnet->run_range_into(split_ws_, split_synth_.data(), 1, 0, cur_split_)
          : sp.net->run_range_into(split_ws_, split_synth_.data(), 1, 0, cur_split_);
  const double elapsed = wall_clock_s() - t0;
  IOB_ENSURES(out.size > 0, "metered prefix produced no output");
  return elapsed;
}

void Node::enable_brownout(const sim::BrownoutPlan& plan) {
  IOB_EXPECTS(plan.off_soc >= 0.0 && plan.off_soc < 1.0, "off threshold must be a SoC fraction");
  IOB_EXPECTS(plan.on_soc > plan.off_soc && plan.on_soc <= 1.0,
              "reboot threshold needs hysteresis above the off threshold");
  IOB_EXPECTS(plan.reboot_energy_j >= 0.0, "reboot energy must be non-negative");
  IOB_EXPECTS(plan.sleep_power_w >= 0.0, "sleep power must be non-negative");
  brownout_ = plan;
}

void Node::settle() {
  const double now = sim_.now();
  const double dt = now - last_settle_t_;
  if (dt <= 0) return;
  last_settle_t_ = now;

  // Sense + ISA integrate over wall time; comm is the MAC ledger delta.
  // While browned out only the sleep floor burns (the MAC delta is zero
  // anyway: the bus skips unpowered nodes).
  const auto& mac = bus_.stats().nodes[mac_id_ - 1];
  const double comm_total = mac.tx_energy_j + mac.rx_energy_j;
  const double comm_delta = comm_total - settled_comm_j_;
  settled_comm_j_ = comm_total;

  const double static_w =
      powered_ ? config_.sense_power_w + config_.isa_power_w : brownout_->sleep_power_w;
  // Split prefix compute accrues per inference and is charged here, like
  // the MAC ledger delta (zero without a split).
  const double split_delta = split_stats_.compute_energy_j - settled_split_j_;
  settled_split_j_ = split_stats_.compute_energy_j;
  const double spend = static_w * dt + comm_delta + split_delta;
  consumed_j_ += spend;
  battery_.discharge(spend);

  if (harvester_) {
    const double gain = harvester_->sample_energy_j(rng_, dt, now);
    harvested_j_ += gain;
    battery_.charge(gain);
  }

  // Adaptive re-partitioning: re-evaluate the split point against the
  // battery glide path, and re-sync the hub session when it moves. Depends
  // only on battery state and elapsed time — deterministic. Suspended while
  // the degradation ladder holds the node in hub-only retreat (the retreat
  // outranks the glide path until the channel heals).
  if (split_ctrl_ && powered_ && !battery_.depleted() && !deg_hub_only_) {
    const std::size_t idx = split_ctrl_->update(battery_, now);
    const std::size_t k = split_ctrl_->candidate(idx).split_at;
    if (k != cur_split_) {
      apply_split(k);
      ++split_stats_.repartitions;
      if (split_resync_) split_resync_(config_.stream, k);
    }
  }

  // Graceful degradation: sample the MAC's channel-health EWMAs and walk
  // the ladder. Deterministic — inputs are the node's own MAC counters and
  // queue depth (no extra RNG draws), so armed grids stay byte-identical
  // across thread counts.
  if (deg_ctrl_ && powered_ && !battery_.depleted()) {
    ChannelHealth h;
    h.loss = 1.0 - mac.delivery_ratio_ewma;
    h.retry_rate = mac.retry_rate_ewma;
    h.queue_depth = bus_.queue_depth(mac_id_);
    const std::size_t prev = deg_ctrl_->current_index();
    if (deg_ctrl_->update(h, now) != prev) apply_degradation(deg_ctrl_->current());
  }

  if (brownout_) update_power_state(now);
}

void Node::update_power_state(double now) {
  if (powered_ && battery_.soc() < brownout_->off_soc) {
    powered_ = false;
    powered_off_at_ = now;
    bus_.set_node_powered(mac_id_, false);
  } else if (!powered_ && battery_.soc() >= brownout_->on_soc) {
    // Boot cost is paid out of the recharge margin; `on_soc - off_soc`
    // hysteresis is what keeps this from oscillating (see BrownoutPlan).
    battery_.discharge(brownout_->reboot_energy_j);
    powered_ = true;
    ++reboots_;
    downtime_closed_s_ += now - powered_off_at_;
    bus_.set_node_powered(mac_id_, true);
  }
}

double Node::downtime_s(double now) const {
  return downtime_closed_s_ + (powered_ ? 0.0 : now - powered_off_at_);
}

double Node::availability(double now) const {
  if (now <= 0.0) return 1.0;
  return 1.0 - downtime_s(now) / now;
}

double Node::mttr_s(double now) const {
  const std::uint64_t episodes = reboots_ + (powered_ ? 0 : 1);
  if (episodes == 0) return 0.0;
  return downtime_s(now) / static_cast<double>(episodes);
}

double Node::average_power_w() const {
  const double t = sim_.now();
  if (t <= 0) return 0.0;
  // Include not-yet-settled MAC energy for an up-to-date figure.
  const auto& mac = bus_.stats().nodes[mac_id_ - 1];
  const double comm_total = mac.tx_energy_j + mac.rx_energy_j;
  const double unsettled_comm = comm_total - settled_comm_j_;
  const double static_w =
      powered_ ? config_.sense_power_w + config_.isa_power_w : brownout_->sleep_power_w;
  const double unsettled_static = static_w * (t - last_settle_t_);
  const double unsettled_split = split_stats_.compute_energy_j - settled_split_j_;
  return (consumed_j_ + unsettled_comm + unsettled_static + unsettled_split) / t;
}

double Node::comm_power_w() const {
  const double t = sim_.now();
  if (t <= 0) return 0.0;
  const auto& mac = bus_.stats().nodes[mac_id_ - 1];
  return (mac.tx_energy_j + mac.rx_energy_j) / t;
}

double Node::projected_life_s() const {
  const double p = average_power_w();
  const double h = harvester_ ? harvester_->average_power_w() : 0.0;
  const double net = p - h;
  if (net <= 0) return std::numeric_limits<double>::infinity();
  return battery_.remaining_j() / net;
}

}  // namespace iob::net
