#include "net/network_sim.hpp"

#include <cmath>
#include <limits>

#include "common/expect.hpp"
#include "common/units.hpp"
#include "energy/lifetime.hpp"

namespace iob::net {

namespace {

std::unique_ptr<const comm::Link> require_link(std::unique_ptr<const comm::Link> link) {
  IOB_EXPECTS(link != nullptr, "owning NetworkSim needs a non-null link");
  return link;
}

}  // namespace

NetworkSim::NetworkSim(const comm::Link& link, NetworkConfig config)
    : sim_(config.seed),
      link_(link),
      bus_(sim_, link_, config.mac, config.trace ? &trace_ : nullptr),
      faults_(config.faults),
      dynamics_cfg_(config.dynamics) {
  trace_.enable(config.trace);
  hub_ = std::make_unique<Hub>(sim_, bus_, config.hub);
}

NetworkSim::NetworkSim(std::unique_ptr<const comm::Link> link, NetworkConfig config)
    : sim_(config.seed),
      owned_link_(require_link(std::move(link))),
      link_(*owned_link_),
      bus_(sim_, link_, config.mac, config.trace ? &trace_ : nullptr),
      faults_(config.faults),
      dynamics_cfg_(config.dynamics) {
  trace_.enable(config.trace);
  hub_ = std::make_unique<Hub>(sim_, bus_, config.hub);
}

std::size_t NetworkSim::add_node(NodeConfig config) {
  IOB_EXPECTS(!ran_, "cannot add nodes after run()");
  nodes_.push_back(std::make_unique<Node>(sim_, bus_, std::move(config)));
  // Split nodes re-sync their hub session when the adaptive controller
  // moves the boundary (no-op for streams without a registered session).
  Node& n = *nodes_.back();
  if (n.config().split) {
    n.set_split_resync(
        [this](const std::string& stream, std::size_t k) { hub_->on_repartition(stream, k); });
  }
  return nodes_.size() - 1;
}

void NetworkSim::add_session(SessionConfig config) { hub_->add_session(std::move(config)); }

NetworkReport NetworkSim::run(double duration_s) {
  IOB_EXPECTS(!ran_, "run() may be called once");
  IOB_EXPECTS(duration_s > 0, "duration must be positive");
  IOB_EXPECTS(!nodes_.empty(), "network needs at least one node");
  ran_ = true;

  // Pre-size the event queue for the steady-state pending population (see
  // the kEventsBase/kEventsPerNode comment in the header) so warm-up never
  // reallocates the slab or heap.
  sim_.reserve_events(kEventsBase + kEventsPerNode * nodes_.size());

  // Install channel dynamics (interference/motion) before the bus starts so
  // the motion chain's sojourn clock begins at t = 0. A disengaged config
  // installs nothing — the clean path is untouched. The RNG stream forks at
  // `stream_id` off the root (Rng::fork is const), so arming dynamics never
  // perturbs MAC, node, or fault draws.
  if (dynamics_cfg_.any()) {
    dynamics_ = std::make_unique<comm::ChannelDynamics>(
        link_, dynamics_cfg_, sim_.rng().fork(dynamics_cfg_.stream_id));
    bus_.set_channel_dynamics(dynamics_.get());
  }

  // Arm the fault plan before the bus starts so the first hub-flap episode
  // and the channel overlay's sojourn clock both begin at t = 0. An empty
  // plan constructs nothing — the clean path is untouched.
  if (faults_.any()) {
    fault_ = std::make_unique<FaultInjector>(sim_, bus_, *hub_, faults_);
    for (auto& n : nodes_) fault_->attach_node(*n);
  }

  bus_.start(0.0);
  sim_.run_until(duration_s);
  bus_.stop();
  hub_->flush_pending(sim_.now());  // last incomplete batch window still counts

  // Credit the leaf-venue half of every split session into its hub-side
  // `SessionStats`, so one struct reports both venues of the split.
  for (auto& n : nodes_) {
    if (!n->config().split) continue;
    const LeafSplitStats& ls = n->split_stats();
    hub_->credit_leaf_compute(n->config().stream, ls.kernel_time_s, ls.compute_energy_j,
                              ls.analytic_compute_energy_j, ls.inferences,
                              ls.activation_bytes);
  }

  // Credit each armed node's degradation telemetry into its session the
  // same way (a session aggregates when several nodes share a stream).
  for (auto& n : nodes_) {
    const DegradationController* dc = n->degradation();
    if (!dc) continue;
    const auto& ms = bus_.stats().nodes[n->mac_id() - 1];
    hub_->credit_degradation(n->config().stream, dc->transitions(),
                             dc->time_degraded_s(sim_.now()), ms.frames_dropped_shed);
  }

  NetworkReport report;
  report.elapsed_s = sim_.now();
  const auto& mac = bus_.stats();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = *nodes_[i];
    const auto& ms = mac.nodes[n.mac_id() - 1];
    NodeReport r;
    r.name = n.config().name;
    r.average_power_w = n.average_power_w();
    r.comm_power_w = n.comm_power_w();
    r.sense_power_w = n.config().sense_power_w;
    r.isa_power_w = n.config().isa_power_w;
    const double life = n.projected_life_s();
    r.perpetual = energy::is_perpetual(life);
    r.projected_life_days =
        std::isinf(life) ? std::numeric_limits<double>::infinity() : life / units::day;
    r.frames_delivered = ms.frames_delivered;
    r.frames_dropped = ms.frames_dropped;
    r.mean_latency_s = ms.latency_s.mean();
    r.p99ish_latency_s = ms.latency_s.max();
    r.dropped_arq = ms.frames_dropped_arq;
    r.dropped_fault = ms.frames_dropped_fault;
    r.dropped_overflow = ms.frames_dropped_overflow;
    r.dropped_overflow_clean = ms.frames_dropped_overflow_clean;
    r.dropped_shed = ms.frames_dropped_shed;
    r.availability = n.availability(report.elapsed_s);
    r.downtime_s = n.downtime_s(report.elapsed_s);
    r.mttr_s = n.mttr_s(report.elapsed_s);
    r.reboots = n.reboots();
    if (n.config().split) {
      const LeafSplitStats& ls = n.split_stats();
      r.split_inferences = ls.inferences;
      r.split_activation_bytes = ls.activation_bytes;
      r.split_compute_energy_j = ls.compute_energy_j;
      r.split_repartitions = ls.repartitions;
      r.split_at = static_cast<std::uint64_t>(ls.split_at);
    }
    if (const DegradationController* dc = n.degradation()) {
      r.degradation_step = static_cast<std::uint64_t>(dc->current_index());
      r.degradation_max_step = static_cast<std::uint64_t>(dc->max_step());
      r.degradation_transitions = dc->transitions();
      r.time_degraded_s = dc->time_degraded_s(report.elapsed_s);
      r.degradation_recovery_s = dc->last_recovery_s();
    }
    report.nodes.push_back(std::move(r));
  }
  report.hub_power_w = hub_->average_power_w();
  report.aggregate_goodput_bps = mac.aggregate_goodput_bps();
  report.bus_utilization = mac.utilization();
  report.hub_crashes = hub_->crashes();
  report.hub_downtime_s = hub_->downtime_s(report.elapsed_s);
  report.hub_availability = hub_->availability(report.elapsed_s);
  return report;
}

}  // namespace iob::net
