#include "net/topology.hpp"

#include <array>
#include <cmath>

namespace iob::net {

namespace {

struct Point3 {
  double x, y, z;  ///< meters; x lateral, y fore-aft, z height
};

/// Stick-figure anatomy, standing, 1.75 m tall. Arms slightly out.
Point3 position(BodyLocation loc) {
  switch (loc) {
    case BodyLocation::kHead: return {0.00, 0.05, 1.70};
    case BodyLocation::kEarLeft: return {-0.09, 0.00, 1.65};
    case BodyLocation::kEarRight: return {0.09, 0.00, 1.65};
    case BodyLocation::kNeck: return {0.00, 0.03, 1.50};
    case BodyLocation::kChest: return {0.00, 0.08, 1.35};
    case BodyLocation::kWaist: return {0.00, 0.05, 1.05};
    case BodyLocation::kWristLeft: return {-0.35, 0.10, 0.85};
    case BodyLocation::kWristRight: return {0.35, 0.10, 0.85};
    case BodyLocation::kFingerLeft: return {-0.38, 0.12, 0.75};
    case BodyLocation::kFingerRight: return {0.38, 0.12, 0.75};
    case BodyLocation::kThighLeft: return {-0.10, 0.05, 0.75};
    case BodyLocation::kAnkleLeft: return {-0.10, 0.02, 0.10};
    case BodyLocation::kAnkleRight: return {0.10, 0.02, 0.10};
  }
  return {0, 0, 0};
}

constexpr double kSurfaceRoutingFactor = 1.25;

}  // namespace

double euclidean_m(BodyLocation a, BodyLocation b) {
  const Point3 pa = position(a), pb = position(b);
  const double dx = pa.x - pb.x, dy = pa.y - pb.y, dz = pa.z - pb.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

double channel_length_m(BodyLocation a, BodyLocation b) {
  return euclidean_m(a, b) * kSurfaceRoutingFactor;
}

std::string to_string(BodyLocation loc) {
  switch (loc) {
    case BodyLocation::kHead: return "head";
    case BodyLocation::kEarLeft: return "ear-L";
    case BodyLocation::kEarRight: return "ear-R";
    case BodyLocation::kNeck: return "neck";
    case BodyLocation::kChest: return "chest";
    case BodyLocation::kWaist: return "waist";
    case BodyLocation::kWristLeft: return "wrist-L";
    case BodyLocation::kWristRight: return "wrist-R";
    case BodyLocation::kFingerLeft: return "finger-L";
    case BodyLocation::kFingerRight: return "finger-R";
    case BodyLocation::kThighLeft: return "thigh-L";
    case BodyLocation::kAnkleLeft: return "ankle-L";
    case BodyLocation::kAnkleRight: return "ankle-R";
  }
  return "?";
}

}  // namespace iob::net
