#pragma once
/// \file device_library.hpp
/// Survey of commercial wearable devices — the data behind the paper's
/// Fig. 2 ("Typical Battery Life for Wearable Technologies"). Each entry
/// carries the battery capacity and typical platform power of a device
/// class; `energy::battery_life_*` turns them into the figure's battery-life
/// buckets. Values are class-representative (public teardowns / spec
/// sheets), not endorsements of specific products.

#include <string>
#include <vector>

#include "net/node.hpp"
#include "net/topology.hpp"
#include "phy/body_motion.hpp"

namespace iob::net {

enum class DeviceEra {
  kPre2024,        ///< Fig. 2 left column: established wearables
  kWearableAi2024, ///< Fig. 2 right column: the 2024 wearable-AI boom
};

struct DeviceSpec {
  std::string name;
  DeviceEra era;
  BodyLocation location;
  double battery_mah;
  double battery_v;
  double platform_power_w;     ///< typical active-use average
  double native_data_rate_bps; ///< sensor/stream rate the device produces
  std::string paper_battery_label;  ///< the bucket Fig. 2 prints for it

  [[nodiscard]] double battery_energy_j() const;
  [[nodiscard]] double battery_life_s() const;
  [[nodiscard]] double battery_life_hours() const;
};

/// The eleven device classes Fig. 2 shows, in figure order.
const std::vector<DeviceSpec>& device_survey();

/// Lookup by name; throws std::invalid_argument if absent.
const DeviceSpec& find_device(const std::string& name);

std::string to_string(DeviceEra era);

/// A ready-to-wire hostile-channel suite: the node configs plus the
/// body-motion profile they are meant to be run under (install via
/// `NetworkConfig::dynamics.motion`).
struct SuitePreset {
  std::string name;
  std::vector<NodeConfig> nodes;
  phy::BodyMotionParams motion;
};

/// The motion-heavy suite (docs/robustness.md): smartwatch + ECG chest
/// patch + earbud on a *running* wearer — short vigorous gait sojourns and
/// frequent arm-swing occlusions. Batteries and locations come from the
/// Fig. 2 survey entries (the patch is the paper's Sec. II-A biopotential
/// node, not a Fig. 2 class); every leaf ships with the degradation ladder
/// armed so the session rides the run/occlusion episodes instead of
/// collapsing.
SuitePreset motion_heavy_suite();

}  // namespace iob::net
