#pragma once
/// \file degradation.hpp
/// Closed-loop graceful degradation under channel hostility
/// (docs/robustness.md). A `DegradationController` watches a node's
/// channel-health observables — delivery-ratio EWMA, retry-rate EWMA,
/// queue depth, all maintained by the MAC — and walks a deterministic
/// *degradation ladder*:
///
///   normal -> codec bitrate downgrade -> frame shedding
///          -> int8 boundary precision -> split retreat to hub-only
///
/// one rung at a time, with step-up hysteresis so a channel riding the
/// threshold cannot make the node oscillate (the same x1.15 discipline as
/// `partition::AdaptiveSplitController`, applied to each health threshold:
/// stepping down requires a metric *over* its limit; stepping back up
/// requires every metric under limit/hysteresis). The ladder's rung 0 must
/// be the identity, which is what makes an armed-but-idle controller
/// bit-identical to no controller at all.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace iob::net {

/// One rung of the ladder: what the node gives up while standing on it.
/// Rung 0 must be the identity (scale 1, modulus 1, no overrides).
struct DegradationStep {
  std::string label = "normal";
  /// Codec bitrate scale in (0, 1]: frame payloads shrink to
  /// `round(frame_bytes * bitrate_scale)` — a coarser codec setting. The
  /// smaller frame is also superlinearly more likely to survive an
  /// elevated BER (FER = 1 - (1-BER)^bits), which is why this is the
  /// ladder's first resort.
  double bitrate_scale = 1.0;
  /// Duty-cycle shedding: only every `shed_modulus`-th frame/inference is
  /// offered to the schedule (1 = no shedding). Shed frames are counted in
  /// the `dropped_shed` taxonomy bucket.
  unsigned shed_modulus = 1;
  /// Split nodes only: force the boundary activation onto the int8 wire
  /// format (1 B/elem + header) regardless of the configured precision.
  bool int8_wire = false;
  /// Split nodes only: retreat to hub-only execution (split point 0 — raw
  /// input ships, no leaf prefix) until the channel heals.
  bool hub_only_split = false;
};

/// The canonical 5-rung ladder the tentpole describes.
[[nodiscard]] std::vector<DegradationStep> default_degradation_ladder();

/// Channel-health observables, as sampled at the node's settle cadence.
struct ChannelHealth {
  double loss = 0.0;        ///< 1 - delivery_ratio_ewma
  double retry_rate = 0.0;  ///< retry_rate_ewma
  std::size_t queue_depth = 0;
};

struct DegradationConfig {
  /// The ladder; empty selects `default_degradation_ladder()`.
  std::vector<DegradationStep> ladder{};
  /// Step-down triggers: any metric exceeding its limit is channel stress.
  double max_loss = 0.10;
  double max_retry_rate = 0.50;
  std::size_t max_queue_depth = 64;
  /// Step-up hysteresis: recovery requires every metric under
  /// limit/hysteresis (the sticky band — same x1.15 as AdaptiveSplit).
  double hysteresis = 1.15;
  /// Minimum dwell on a rung before the next transition (either
  /// direction), so one settle period of noise cannot double-step.
  double min_dwell_s = 0.5;
};

class DegradationController {
 public:
  explicit DegradationController(DegradationConfig config);

  /// Evaluate the health sample at sim time `now` (non-decreasing across
  /// calls) and return the rung index to stand on. Deterministic: depends
  /// only on the sample sequence.
  std::size_t update(const ChannelHealth& health, double now);

  [[nodiscard]] const DegradationStep& current() const { return config_.ladder[current_]; }
  [[nodiscard]] std::size_t current_index() const { return current_; }
  [[nodiscard]] const DegradationConfig& config() const { return config_; }

  // --- Telemetry (SessionStats / NodeReport) ---

  /// Rung transitions taken (both directions).
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  /// Deepest rung ever stood on.
  [[nodiscard]] std::size_t max_step() const { return max_step_; }
  /// Seconds spent on any rung > 0, up to `now`.
  [[nodiscard]] double time_degraded_s(double now) const;
  /// Sim time of the most recent full recovery (return to rung 0);
  /// 0 when the controller never left rung 0 or has not yet returned.
  [[nodiscard]] double last_recovery_s() const { return last_recovery_t_; }

 private:
  DegradationConfig config_;
  std::size_t current_ = 0;
  std::uint64_t transitions_ = 0;
  std::size_t max_step_ = 0;
  double last_update_t_ = 0.0;
  double last_transition_t_ = 0.0;
  bool ever_transitioned_ = false;
  double degraded_accum_s_ = 0.0;
  double last_recovery_t_ = 0.0;
};

}  // namespace iob::net
