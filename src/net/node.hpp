#pragma once
/// \file node.hpp
/// A leaf IoB node on the discrete-event simulation: sensor front-end +
/// optional ISA stage + body-bus MAC attachment + battery/harvester. This
/// is the "featherweight, perpetually operating wearable AI node" of the
/// paper's right-hand Fig. 1 architecture, instrumented. The node settles
/// its energy ledger periodically: sensing and ISA power integrate over
/// wall time, communication energy is pulled from the MAC's per-node
/// accounting, harvest energy is credited, and the battery tracks SoC.

#include <memory>
#include <optional>
#include <string>

#include "comm/tdma.hpp"
#include "energy/battery.hpp"
#include "energy/harvester.hpp"
#include "net/topology.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic.hpp"

namespace iob::net {

struct NodeConfig {
  std::string name = "node";
  BodyLocation location = BodyLocation::kChest;
  std::string stream = "data";
  double sense_power_w = 10e-6;       ///< front-end power (from survey model)
  double isa_power_w = 0.0;           ///< in-sensor analytics power
  double output_rate_bps = 6000.0;    ///< traffic after ISA
  std::uint32_t frame_bytes = 240;
  /// Traffic-source start offset (s): real sensors are not phase-locked, so
  /// staggering leaves spreads frame arrivals across superframes (and is
  /// what makes the hub's staged batch size track the batch window rather
  /// than snapping to the population size).
  double phase_s = 0.0;
  unsigned slot_weight = 1;           ///< TDMA slots per superframe (rate-proportional)
  double battery_mah = 1000.0;        ///< Fig. 3 default coin cell
  double battery_v = 3.0;
  std::optional<energy::HarvesterParams> harvester;
  double settle_period_s = 1.0;       ///< energy-ledger update cadence
};

class Node {
 public:
  /// Registers with the bus and begins streaming at sim start.
  Node(sim::Simulator& sim, comm::TdmaBus& bus, NodeConfig config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const NodeConfig& config() const { return config_; }
  [[nodiscard]] comm::NodeId mac_id() const { return mac_id_; }
  [[nodiscard]] const energy::Battery& battery() const { return battery_; }

  /// Average platform power (W) over the run so far (sense + ISA + comm,
  /// net of nothing — harvesting is accounted on the battery, not here).
  [[nodiscard]] double average_power_w() const;

  /// Communication-only average power (W).
  [[nodiscard]] double comm_power_w() const;

  /// Projected battery life (s) at the observed average power, counting the
  /// harvester's long-run average as offset. +inf when harvest covers load.
  [[nodiscard]] double projected_life_s() const;

  [[nodiscard]] double energy_consumed_j() const { return consumed_j_; }
  [[nodiscard]] double energy_harvested_j() const { return harvested_j_; }
  [[nodiscard]] bool alive() const { return !battery_.depleted(); }

  /// Frame payload period implied by rate and frame size.
  [[nodiscard]] double frame_period_s() const;

  // --- Brownout/reboot lifecycle (docs/robustness.md) ---

  /// Arm the SoC-threshold brownout lifecycle. Must be called before the
  /// simulation runs. Without it the legacy behavior is preserved exactly:
  /// a depleted node never transmits again.
  void enable_brownout(const sim::BrownoutPlan& plan);

  /// False while browned out (core and MAC off, harvester still charging).
  [[nodiscard]] bool powered() const { return powered_; }

  /// Completed brownout->reboot cycles.
  [[nodiscard]] std::uint64_t reboots() const { return reboots_; }

  /// Accumulated powered-off time up to `now`, including a still-open
  /// brownout episode.
  [[nodiscard]] double downtime_s(double now) const;

  /// Fraction of [0, now] the node was powered. 1.0 on the clean path.
  [[nodiscard]] double availability(double now) const;

  /// Mean time to repair: downtime divided by brownout episodes (counting
  /// a still-open one). 0 when no episode ever started.
  [[nodiscard]] double mttr_s(double now) const;

 private:
  void settle();
  void update_power_state(double now);

  sim::Simulator& sim_;
  comm::TdmaBus& bus_;
  NodeConfig config_;
  comm::NodeId mac_id_;
  energy::Battery battery_;
  std::optional<energy::Harvester> harvester_;
  std::unique_ptr<workload::PeriodicSource> source_;
  sim::Rng rng_;

  double last_settle_t_ = 0.0;
  double settled_comm_j_ = 0.0;  ///< MAC energy already charged
  double consumed_j_ = 0.0;
  double harvested_j_ = 0.0;
  std::uint32_t seq_ = 0;

  std::optional<sim::BrownoutPlan> brownout_;
  bool powered_ = true;
  std::uint64_t reboots_ = 0;
  double downtime_closed_s_ = 0.0;  ///< completed episodes only
  double powered_off_at_ = 0.0;     ///< start of the open episode
};

}  // namespace iob::net
