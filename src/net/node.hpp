#pragma once
/// \file node.hpp
/// A leaf IoB node on the discrete-event simulation: sensor front-end +
/// optional ISA stage + body-bus MAC attachment + battery/harvester. This
/// is the "featherweight, perpetually operating wearable AI node" of the
/// paper's right-hand Fig. 1 architecture, instrumented. The node settles
/// its energy ledger periodically: sensing and ISA power integrate over
/// wall time, communication energy is pulled from the MAC's per-node
/// accounting, harvest energy is credited, and the battery tracks SoC.

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/tdma.hpp"
#include "energy/battery.hpp"
#include "energy/harvester.hpp"
#include "net/degradation.hpp"
#include "net/topology.hpp"
#include "nn/precision.hpp"
#include "nn/workspace.hpp"
#include "partition/adaptive_split.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic.hpp"

namespace iob::nn {
class Model;
class QuantizedModel;
}  // namespace iob::nn

namespace iob::net {

/// Split execution on the leaf (docs/architecture.md): instead of streaming
/// raw sensor frames, the node runs model layers [0, split_at) on-body once
/// per period and ships the *boundary activation* — serialized at its real
/// wire size (`nn::activation_wire_bytes`), fragmented into bus MTU-sized
/// frames. The hub session resumes at `split_at` (`SessionConfig::
/// split_layers`).
struct LeafSplit {
  const nn::Model* net = nullptr;  ///< borrowed; must outlive the node
  std::size_t split_at = 0;        ///< k: first layer that runs on the hub
  /// Boundary wire format: `kInt8` ships 1 B/element plus the 8-byte
  /// quant-params header, `kF32` ships raw 4 B/element.
  nn::Precision precision = nn::Precision::kInt8;
  double period_s = 1.0;           ///< one sensed window (inference) per period
  /// Analytic ledger: leaf silicon efficiency for the prefix MACs (ULP-MCU
  /// class; matches `partition::CostModel` leaf defaults).
  double energy_per_mac_j = 20e-12;
  /// Execute-and-meter: actually run the prefix through the nn engine on
  /// the node's workspace and derive compute energy from measured kernel
  /// time x `compute_power_w`. Host-dependent like the hub's meter — keep
  /// off for deterministic sweeps (the analytic ledger charges instead).
  bool execute_and_meter = false;
  double compute_power_w = 5e-3;   ///< leaf core active power while metering
  /// Int8 engine for metered prefixes (borrowed, built by the caller).
  /// Required when `execute_and_meter` and `precision == kInt8`.
  const nn::QuantizedModel* qnet = nullptr;
  /// Runtime re-partitioning: when set, every energy settle re-evaluates
  /// the split point against the battery glide path
  /// (`partition::AdaptiveSplitController`); a change re-syncs the hub
  /// session through the resync callback `NetworkSim` wires up.
  std::optional<partition::AdaptiveSplitConfig> adaptive;
};

/// Leaf-venue half of a split inference, for post-run crediting into
/// `SessionStats` and fleet telemetry.
struct LeafSplitStats {
  std::size_t split_at = 0;            ///< current k (after re-partitioning)
  std::uint64_t inferences = 0;        ///< prefix executions
  std::uint64_t activation_bytes = 0;  ///< boundary wire bytes enqueued
  double compute_energy_j = 0.0;       ///< charged to the battery
  double analytic_compute_energy_j = 0.0;  ///< MACs x energy/MAC ledger
  double kernel_time_s = 0.0;          ///< measured prefix time (metering only)
  std::uint64_t repartitions = 0;      ///< adaptive split-point changes
};

struct NodeConfig {
  std::string name = "node";
  BodyLocation location = BodyLocation::kChest;
  std::string stream = "data";
  double sense_power_w = 10e-6;       ///< front-end power (from survey model)
  double isa_power_w = 0.0;           ///< in-sensor analytics power
  double output_rate_bps = 6000.0;    ///< traffic after ISA
  std::uint32_t frame_bytes = 240;
  /// Traffic-source start offset (s): real sensors are not phase-locked, so
  /// staggering leaves spreads frame arrivals across superframes (and is
  /// what makes the hub's staged batch size track the batch window rather
  /// than snapping to the population size).
  double phase_s = 0.0;
  unsigned slot_weight = 1;           ///< TDMA slots per superframe (rate-proportional)
  double battery_mah = 1000.0;        ///< Fig. 3 default coin cell
  double battery_v = 3.0;
  std::optional<energy::HarvesterParams> harvester;
  double settle_period_s = 1.0;       ///< energy-ledger update cadence
  /// Split execution: when set the node ships boundary activations instead
  /// of rate-based sensor frames (`output_rate_bps` is ignored for traffic;
  /// `frame_bytes` still caps each bus frame — activations fragment).
  std::optional<LeafSplit> split;
  /// Closed-loop graceful degradation (docs/robustness.md): when set the
  /// node evaluates its channel health at every settle and walks the
  /// degradation ladder. Armed-but-idle (rung 0 throughout) is
  /// bit-identical to unarmed.
  std::optional<DegradationConfig> degradation;
};

class Node {
 public:
  /// Registers with the bus and begins streaming at sim start.
  Node(sim::Simulator& sim, comm::TdmaBus& bus, NodeConfig config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const NodeConfig& config() const { return config_; }
  [[nodiscard]] comm::NodeId mac_id() const { return mac_id_; }
  [[nodiscard]] const energy::Battery& battery() const { return battery_; }

  /// Average platform power (W) over the run so far (sense + ISA + comm,
  /// net of nothing — harvesting is accounted on the battery, not here).
  [[nodiscard]] double average_power_w() const;

  /// Communication-only average power (W).
  [[nodiscard]] double comm_power_w() const;

  /// Projected battery life (s) at the observed average power, counting the
  /// harvester's long-run average as offset. +inf when harvest covers load.
  [[nodiscard]] double projected_life_s() const;

  [[nodiscard]] double energy_consumed_j() const { return consumed_j_; }
  [[nodiscard]] double energy_harvested_j() const { return harvested_j_; }
  [[nodiscard]] bool alive() const { return !battery_.depleted(); }

  /// Frame payload period implied by rate and frame size.
  [[nodiscard]] double frame_period_s() const;

  // --- Brownout/reboot lifecycle (docs/robustness.md) ---

  /// Arm the SoC-threshold brownout lifecycle. Must be called before the
  /// simulation runs. Without it the legacy behavior is preserved exactly:
  /// a depleted node never transmits again.
  void enable_brownout(const sim::BrownoutPlan& plan);

  /// False while browned out (core and MAC off, harvester still charging).
  [[nodiscard]] bool powered() const { return powered_; }

  /// Completed brownout->reboot cycles.
  [[nodiscard]] std::uint64_t reboots() const { return reboots_; }

  /// Accumulated powered-off time up to `now`, including a still-open
  /// brownout episode.
  [[nodiscard]] double downtime_s(double now) const;

  /// Fraction of [0, now] the node was powered. 1.0 on the clean path.
  [[nodiscard]] double availability(double now) const;

  /// Mean time to repair: downtime divided by brownout episodes (counting
  /// a still-open one). 0 when no episode ever started.
  [[nodiscard]] double mttr_s(double now) const;

  // --- Split execution (docs/architecture.md) ---

  /// Leaf-venue execution ledger. All-zero unless `NodeConfig::split` is
  /// set.
  [[nodiscard]] const LeafSplitStats& split_stats() const { return split_stats_; }

  /// Current split point k (0 when no split is configured).
  [[nodiscard]] std::size_t split_at() const { return cur_split_; }

  /// Install the re-partition callback: invoked as `(stream, new_k)` when
  /// the adaptive controller moves the split point, so the hub session can
  /// re-sync its boundary window. `NetworkSim::add_node` wires this to
  /// `Hub::on_repartition`.
  void set_split_resync(std::function<void(const std::string&, std::size_t)> cb) {
    split_resync_ = std::move(cb);
  }

  // --- Graceful degradation (docs/robustness.md) ---

  /// The node's degradation controller, or nullptr when unarmed.
  [[nodiscard]] const DegradationController* degradation() const {
    return deg_ctrl_ ? &*deg_ctrl_ : nullptr;
  }

 private:
  void settle();
  void update_power_state(double now);
  void apply_split(std::size_t k);
  void run_split_inference(double t);
  [[nodiscard]] double run_prefix_metered();
  void apply_degradation(const DegradationStep& step);
  /// True when the degradation ladder sheds this send event (also counts
  /// it at the MAC). Called once per traffic-source firing.
  [[nodiscard]] bool shed_this_event();

  sim::Simulator& sim_;
  comm::TdmaBus& bus_;
  NodeConfig config_;
  comm::NodeId mac_id_;
  energy::Battery battery_;
  std::optional<energy::Harvester> harvester_;
  std::unique_ptr<workload::PeriodicSource> source_;
  sim::Rng rng_;

  double last_settle_t_ = 0.0;
  double settled_comm_j_ = 0.0;  ///< MAC energy already charged
  double consumed_j_ = 0.0;
  double harvested_j_ = 0.0;
  std::uint32_t seq_ = 0;

  // Split-execution state (untouched without NodeConfig::split).
  LeafSplitStats split_stats_;
  std::size_t cur_split_ = 0;
  std::uint64_t prefix_macs_ = 0;   ///< analytic MACs of layers [0, cur_split_)
  std::uint64_t wire_bytes_ = 0;    ///< serialized boundary activation size
  double settled_split_j_ = 0.0;    ///< split compute already battery-charged
  std::optional<partition::AdaptiveSplitController> split_ctrl_;
  std::function<void(const std::string&, std::size_t)> split_resync_;
  nn::Workspace split_ws_;          ///< metered-prefix workspace (grow-only)
  std::vector<float> split_synth_;  ///< patterned input for metered prefixes

  // Degradation-ladder state (untouched without NodeConfig::degradation).
  std::optional<DegradationController> deg_ctrl_;
  std::uint32_t eff_frame_bytes_ = 0;  ///< 0 = configured size (rung-0 identity)
  unsigned shed_modulus_ = 1;
  std::uint64_t shed_counter_ = 0;
  nn::Precision split_precision_ = nn::Precision::kInt8;  ///< current wire format
  bool deg_hub_only_ = false;      ///< ladder forced split retreat to k = 0
  std::size_t deg_saved_split_ = 0;  ///< split point to restore on recovery

  std::optional<sim::BrownoutPlan> brownout_;
  bool powered_ = true;
  std::uint64_t reboots_ = 0;
  double downtime_closed_s_ = 0.0;  ///< completed episodes only
  double powered_off_at_ = 0.0;     ///< start of the open episode
};

}  // namespace iob::net
