#include "net/hub.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/expect.hpp"
#include "nn/model.hpp"
#include "nn/quantize.hpp"

namespace iob::net {

namespace {

double wall_clock_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Analytic MAC-energy factor for a session's precision. 1.0 for f32 (the
/// multiply is exact, keeping the pre-precision ledger bit-identical).
double mac_scale(const HubConfig& hub, const SessionConfig& cfg) {
  return cfg.precision == nn::Precision::kInt8 ? hub.int8_mac_energy_scale : 1.0;
}

/// Index into the per-precision metering arrays.
std::size_t prec_idx(nn::Precision p) { return p == nn::Precision::kInt8 ? 1 : 0; }

/// Group key of a session: shared model tag, or a per-stream private
/// group. The "~" prefix keeps private keys out of any user model
/// namespace. Split sessions group per boundary — members of one batched
/// pass must resume at the same layer. Unsplit sessions keep the plain
/// model tag, byte-identical to the pre-split grouping. The single
/// definition behind add_session's group bookkeeping and the
/// adaptive-flush group lookup.
std::string group_key(const SessionConfig& cfg) {
  if (cfg.model.empty()) return "~stream:" + cfg.stream;
  if (cfg.split_layers == 0) return cfg.model;
  return cfg.model + "~split:" + std::to_string(cfg.split_layers);
}

/// Per-sample element count of the tensor a session's metered pass feeds
/// in: the model input, or the boundary activation at `split_layers`.
std::int64_t pass_input_elems(const nn::Model& net, std::size_t first_layer) {
  return first_layer == 0 ? nn::shape_elems(net.input_shape())
                          : nn::shape_elems(net.profiles()[first_layer - 1].output_shape);
}

/// The single definition of the metered-pass input pattern: fill the
/// not-yet-patterned suffix of `buf` up to `elems`. The value is a pure
/// function of element position, so the prefix any sub-batch feeds in is
/// bit-identical no matter which buffer (hub-owned or thread-local) staged
/// it, or in what growth order. Kernel time is data-independent; the
/// pattern only needs to be deterministic and non-degenerate.
float* staged_pattern(std::vector<float>& buf, std::int64_t& filled, std::int64_t elems) {
  if (static_cast<std::int64_t>(buf.size()) < elems) {
    buf.resize(static_cast<std::size_t>(elems));
  }
  if (filled < elems) {
    for (std::int64_t i = filled; i < elems; ++i) {
      buf[static_cast<std::size_t>(i)] =
          static_cast<float>((static_cast<std::uint64_t>(i) * 2654435761ULL) % 1024ULL) / 512.0f -
          1.0f;
    }
    filled = elems;
  }
  return buf.data();
}

/// Per-worker synth staging for the parallel metered path. Grow-only and
/// thread-local, mirroring `nn::detail::thread_workspace()`: once every
/// worker hit its high-water batch shape, parallel passes allocate nothing.
float* thread_synth_input(std::int64_t sample_elems, int batch) {
  struct SynthBuf {
    std::vector<float> data;
    std::int64_t filled = 0;
  };
  static thread_local SynthBuf buf;
  return staged_pattern(buf.data, buf.filled, sample_elems * batch);
}

}  // namespace

Hub::Hub(sim::Simulator& sim, comm::TdmaBus& bus, HubConfig config)
    : sim_(sim), bus_(bus), config_(config) {
  IOB_EXPECTS(config_.energy_per_mac_j >= 0, "energy per MAC must be non-negative");
  IOB_EXPECTS(config_.energy_per_weight_byte_j >= 0,
              "energy per weight byte must be non-negative");
  IOB_EXPECTS(config_.compute_power_w >= 0, "compute power must be non-negative");
  IOB_EXPECTS(config_.int8_mac_energy_scale >= 0, "int8 mac scale must be non-negative");
  bus_.set_delivery_handler(
      [this](const comm::Frame& f, sim::Time t) { on_frame(f, t); });
  if (config_.batch_window > 0) {
    bus_.set_superframe_end_handler([this](sim::Time t) { on_superframe_end(t); });
  }
}

void Hub::add_session(SessionConfig config) {
  IOB_EXPECTS(!config.stream.empty(), "session stream tag must be non-empty");
  IOB_EXPECTS(config.bytes_per_inference > 0, "bytes per inference must be positive");
  // Quantize-at-load: int8 metered sessions get their QuantizedModel here,
  // never inside the timed execute path. Analytic-only runs (the
  // deterministic sweeps) skip the cost entirely.
  if (config_.execute_and_meter && config.net != nullptr &&
      config.precision == nn::Precision::kInt8 &&
      qmodels_.find(config.net) == qmodels_.end()) {
    qmodels_.emplace(config.net, std::make_unique<nn::QuantizedModel>(*config.net));
  }
  if (config.net != nullptr) {
    IOB_EXPECTS(config.split_layers <= config.net->layer_count(),
                "session split point out of range");
    // Int8 metered resumption requires a feasible boundary: the quantized
    // lowering cannot restart inside a fused conv+relu pair. Adaptive
    // deployments must restrict their candidate splits accordingly.
    if (config_.execute_and_meter && config.precision == nn::Precision::kInt8 &&
        config.split_layers > 0) {
      IOB_EXPECTS(qmodels_.at(config.net)->feasible_boundary(config.split_layers),
                  "int8 metered session split must be a feasible boundary");
    }
  }
  const std::string group = group_key(config);
  // Resolve (or create) the session slot. Stats and staging survive
  // re-registration — only the config is replaced, exactly the old
  // "default-construct absent map entries" contract.
  std::size_t slot;
  const auto idx_it = session_index_.find(config.stream);
  if (idx_it != session_index_.end()) {
    slot = idx_it->second;
    sessions_[slot].cfg = std::move(config);
  } else {
    // Reserve ahead of the insert: the delivery hot path only probes this
    // map, so growing it here keeps steady-state delivery rehash-free.
    session_index_.reserve(sessions_.size() + 1);
    slot = sessions_.size();
    Session s;
    s.cfg = std::move(config);
    session_index_.emplace(s.cfg.stream, slot);
    sessions_.push_back(std::move(s));
  }
  // Re-registering a stream (possibly under a new model tag) must leave it
  // in exactly one group, or flush/energy accounting would double-count.
  for (auto& [g, members] : groups_) {
    if (g == group) continue;
    members.erase(std::remove(members.begin(), members.end(), slot), members.end());
  }
  groups_.erase(std::remove_if(groups_.begin(), groups_.end(),
                               [](const auto& g) { return g.second.empty(); }),
                groups_.end());
  auto it = std::find_if(groups_.begin(), groups_.end(),
                         [&](const auto& g) { return g.first == group; });
  if (it == groups_.end()) {
    groups_.emplace_back(group, std::vector<std::size_t>{slot});
  } else if (std::find(it->second.begin(), it->second.end(), slot) == it->second.end()) {
    it->second.push_back(slot);
  }
  // Group vector indices may have shifted (empty-group compaction above):
  // rebuild the slot -> group map. add_session is setup, not hot path.
  group_of_.assign(sessions_.size(), 0);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (const std::size_t member : groups_[g].second) group_of_[member] = g;
  }
}

void Hub::on_frame(const comm::Frame& frame, sim::Time delivered_at) {
  ++frames_received_;
  bytes_received_ += frame.payload_bytes;
  latency_s_.add(delivered_at - frame.created_s);

  // The one hash probe of the delivery hot path: stream tag -> slot. All
  // per-session state (config, stats, staging) is co-located in the slot.
  const auto idx_it = session_index_.find(frame.stream);
  if (idx_it == session_index_.end()) return;
  const std::size_t slot = idx_it->second;
  Session& sess = sessions_[slot];
  const SessionConfig& cfg = sess.cfg;
  SessionStats& st = sess.stats;
  st.bytes_in += frame.payload_bytes;

  Staged& staged = sess.staged;
  staged.pending_bytes += frame.payload_bytes;
  if (config_.batch_window > 0) {
    // Batched path: stage until the superframe flush — or, with an
    // adaptive target, flush the window early the moment this group's
    // staged batch reaches it (bounding queued latency under bursts).
    staged.frame_times.push_back(delivered_at);
    if (config_.max_staged_batch > 0 &&
        group_staged_inferences(slot) >= config_.max_staged_batch) {
      superframes_since_flush_ = 0;
      flush_batches(delivered_at);
    }
    return;
  }

  // Per-frame path: run as soon as a window fills, re-streaming weights for
  // every inference (the cost batching amortizes).
  while (staged.pending_bytes >= cfg.bytes_per_inference) {
    staged.pending_bytes -= cfg.bytes_per_inference;
    ++st.inferences;
    // Single-expression add: with weight_bytes == 0 the sum is bit-identical
    // to the historical macs-only charge, and with batch_window == 1 a
    // one-inference flush accumulates the exact same double.
    const double analytic =
        static_cast<double>(cfg.macs_per_inference) * config_.energy_per_mac_j *
            mac_scale(config_, cfg) +
        static_cast<double>(cfg.weight_bytes) * config_.energy_per_weight_byte_j;
    st.analytic_compute_energy_j += analytic;
    const bool int8 = cfg.precision == nn::Precision::kInt8;
    if (config_.execute_and_meter && cfg.net != nullptr) {
      const double t = execute_pass(*cfg.net, cfg.precision, 1, cfg.split_layers);
      st.kernel_time_s += t;
      (int8 ? st.kernel_time_int8_s : st.kernel_time_f32_s) += t;
      ++st.executed_inferences;
      const double e = t * config_.compute_power_w;
      st.compute_energy_j += e;
      (int8 ? st.compute_energy_int8_j : st.compute_energy_f32_j) += e;
    } else {
      st.compute_energy_j += analytic;
      (int8 ? st.compute_energy_int8_j : st.compute_energy_f32_j) += analytic;
    }
    if (cfg.forward_to_cloud) {
      st.uplink_energy_j +=
          static_cast<double>(cfg.result_bytes) * 8.0 * config_.uplink_energy_per_bit_j;
    }
  }
}

void Hub::flush_pending(sim::Time now) {
  if (config_.batch_window == 0) return;
  superframes_since_flush_ = 0;
  flush_batches(now);
}

void Hub::on_superframe_end(sim::Time boundary) {
  if (++superframes_since_flush_ < config_.batch_window) return;
  superframes_since_flush_ = 0;
  flush_batches(boundary);
}

void Hub::flush_batches(sim::Time boundary) {
  for (const auto& [group, members] : groups_) {
    (void)group;
    // Pass 1: staged inference count per member and the group's weight
    // footprint (members share a model; max() tolerates config drift).
    std::uint64_t total = 0;
    std::uint64_t weight_bytes = 0;
    for (const std::size_t slot : members) {
      const Session& sess = sessions_[slot];
      total += sess.staged.pending_bytes / sess.cfg.bytes_per_inference;
      weight_bytes = std::max(weight_bytes, sess.cfg.weight_bytes);
    }

    // Staging delay is charged at every flush: each staged frame waited
    // from delivery to this boundary whether or not its window filled. The
    // clamp covers the end-of-run flush, where the final superframe's
    // deliveries carry timestamps past the run horizon (zero wait, never
    // negative).
    for (const std::size_t slot : members) {
      Session& sess = sessions_[slot];
      if (sess.staged.frame_times.empty()) continue;
      for (const sim::Time t : sess.staged.frame_times) {
        sess.stats.queued_latency_s.add(std::max(0.0, boundary - t));
      }
      sess.staged.frame_times.clear();
    }

    if (total == 0) continue;
    ++batched_passes_;

    // Execute-and-meter: run the staged inferences of the members that
    // carry an executable model (the group shares one by construction)
    // through the nn engine once per precision, and attribute each measured
    // kernel time by share of its precision's metered batch. Members
    // without a model stay analytic, exactly as on the per-frame path.
    const nn::Model* net = nullptr;
    std::size_t split_first = 0;  // shared by construction: split is in the group key
    std::uint64_t metered_total[2] = {0, 0};  // [f32, int8]
    double pass_time_s[2] = {0.0, 0.0};
    if (config_.execute_and_meter) {
      for (const std::size_t slot : members) {
        const SessionConfig& cfg = sessions_[slot].cfg;
        if (cfg.net == nullptr) continue;
        IOB_EXPECTS(net == nullptr || net == cfg.net,
                    "sessions sharing a model tag must share one nn::Model instance");
        net = cfg.net;
        split_first = cfg.split_layers;
        metered_total[prec_idx(cfg.precision)] +=
            sessions_[slot].staged.pending_bytes / cfg.bytes_per_inference;
      }
      if (metered_total[0] > 0) {
        pass_time_s[0] = execute_pass(*net, nn::Precision::kF32, metered_total[0], split_first);
      }
      if (metered_total[1] > 0) {
        pass_time_s[1] = execute_pass(*net, nn::Precision::kInt8, metered_total[1], split_first);
      }
    }

    // Pass 2: one batched model pass of size `total`. Weights stream once;
    // each session pays its sample MACs plus its share of the weight cost.
    const double weight_energy_j =
        static_cast<double>(weight_bytes) * config_.energy_per_weight_byte_j;
    for (const std::size_t slot : members) {
      Session& sess = sessions_[slot];
      const SessionConfig& cfg = sess.cfg;
      Staged& staged = sess.staged;
      const std::uint64_t n = staged.pending_bytes / cfg.bytes_per_inference;
      if (n == 0) continue;
      staged.pending_bytes -= n * cfg.bytes_per_inference;
      SessionStats& st = sess.stats;
      st.inferences += n;
      st.batched_inferences += n;
      ++st.batched_passes;
      const double analytic =
          static_cast<double>(n * cfg.macs_per_inference) * config_.energy_per_mac_j *
              mac_scale(config_, cfg) +
          weight_energy_j * (static_cast<double>(n) / static_cast<double>(total));
      st.analytic_compute_energy_j += analytic;
      const bool int8 = cfg.precision == nn::Precision::kInt8;
      double charged = analytic;
      const std::size_t pi = prec_idx(cfg.precision);
      if (metered_total[pi] > 0 && cfg.net != nullptr) {
        const double time_share =
            pass_time_s[pi] * (static_cast<double>(n) / static_cast<double>(metered_total[pi]));
        st.kernel_time_s += time_share;
        (int8 ? st.kernel_time_int8_s : st.kernel_time_f32_s) += time_share;
        st.executed_inferences += n;
        charged = time_share * config_.compute_power_w;
      }
      st.compute_energy_j += charged;
      (int8 ? st.compute_energy_int8_j : st.compute_energy_f32_j) += charged;
      st.batched_compute_energy_j += charged;
      if (cfg.forward_to_cloud) {
        st.uplink_energy_j += static_cast<double>(n) * static_cast<double>(cfg.result_bytes) *
                              8.0 * config_.uplink_energy_per_bit_j;
      }
    }
  }
}

void Hub::on_hub_crash(sim::Time now) {
  if (!up_) return;
  up_ = false;
  ++crashes_;
  crashed_at_ = now;
  bus_.set_hub_up(false);
  // Staged work dies with the crash. Iterate groups_ (insertion order, like
  // flush_batches) so the attribution order is deterministic.
  for (const auto& [group, members] : groups_) {
    (void)group;
    for (const std::size_t slot : members) {
      Session& sess = sessions_[slot];
      sess.stats.staged_frames_lost += sess.staged.frame_times.size();
      sess.stats.staged_bytes_lost += sess.staged.pending_bytes;
      sess.staged.pending_bytes = 0;
      sess.staged.frame_times.clear();
    }
  }
  superframes_since_flush_ = 0;
}

void Hub::on_hub_restart(sim::Time now) {
  if (up_) return;
  up_ = true;
  downtime_closed_s_ += now - crashed_at_;
  bus_.set_hub_up(true);
  // Sessions restore from their surviving configs; each one re-syncs with
  // an empty staging buffer.
  for (const auto& [group, members] : groups_) {
    (void)group;
    for (const std::size_t slot : members) ++sessions_[slot].stats.fault_resyncs;
  }
}

double Hub::downtime_s(sim::Time now) const {
  return downtime_closed_s_ + (up_ ? 0.0 : now - crashed_at_);
}

double Hub::availability(sim::Time now) const {
  if (now <= 0.0) return 1.0;
  return 1.0 - downtime_s(now) / now;
}

std::uint64_t Hub::group_staged_inferences(std::size_t slot) const {
  std::uint64_t total = 0;
  for (const std::size_t member : groups_[group_of_[slot]].second) {
    const Session& sess = sessions_[member];
    total += sess.staged.pending_bytes / sess.cfg.bytes_per_inference;
  }
  return total;
}

double Hub::execute_pass(const nn::Model& net, nn::Precision precision, std::uint64_t count,
                         std::size_t first_layer) {
  const nn::QuantizedModel* qm = nullptr;
  if (precision == nn::Precision::kInt8) {
    const auto it = qmodels_.find(&net);
    IOB_EXPECTS(it != qmodels_.end(), "int8 metered session has no quantized model");
    qm = it->second.get();
  }
  const std::size_t last = net.layer_count();
  IOB_EXPECTS(first_layer <= last, "resume layer out of range");
  // Everything-on-leaf (k == n): the hub receives finished logits and has
  // no suffix to run — zero kernel time, by definition.
  if (first_layer == last) return 0.0;
  const std::int64_t sample_elems = pass_input_elems(net, first_layer);
  const std::size_t nsub =
      static_cast<std::size_t>((count + kMeterBatchCap - 1) / kMeterBatchCap);
  const std::size_t threads =
      config_.engine_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : config_.engine_threads;
  // Fan out only when it can pay off AND we are not already inside another
  // pool's parallel region (a fleet sweep runs many hubs concurrently; the
  // engine degrades to serial there so thread counts never multiply).
  if (threads > 1 && nsub > 1 && !sim::TaskPool::in_parallel_region()) {
    return execute_pass_parallel(net, qm, count, first_layer, last, sample_elems, nsub, threads);
  }
  double elapsed = 0.0;
  while (count > 0) {
    const int b = static_cast<int>(std::min(count, kMeterBatchCap));
    float* in = synth_input(sample_elems, b);
    // Size the arena outside the timed region: one-time buffer growth is
    // setup cost, not kernel time, and would skew short metered runs.
    if (qm != nullptr) {
      ws_.configure(*qm, b);
    } else {
      ws_.configure(net, b);
    }
    const double t0 = wall_clock_s();
    // Split sessions resume at the boundary; first_layer == 0 runs the
    // whole model through the identical range engine.
    const nn::ConstSpan out = qm != nullptr
                                  ? qm->run_range_into(ws_, in, b, first_layer, last)
                                  : net.run_range_into(ws_, in, b, first_layer, last);
    elapsed += wall_clock_s() - t0;
    // Touch the result so the pass is observably executed.
    IOB_ENSURES(out.size > 0, "metered pass produced no output");
    count -= static_cast<std::uint64_t>(b);
  }
  return elapsed;
}

double Hub::execute_pass_parallel(const nn::Model& net, const nn::QuantizedModel* qm,
                                  std::uint64_t count, std::size_t first_layer, std::size_t last,
                                  std::int64_t sample_elems, std::size_t nsub,
                                  std::size_t threads) {
  if (engine_pool_ == nullptr) engine_pool_ = std::make_unique<sim::TaskPool>(threads);
  if (subbatch_time_s_.size() < nsub) subbatch_time_s_.resize(nsub);
  // Everything the workers need, reachable through ONE pointer: the lambda
  // capture stays within std::function's small-buffer size, so building the
  // RangeBody never allocates (the pass keeps the zero-steady-state-heap
  // contract even while fanning out).
  struct Ctx {
    const nn::Model* net;
    const nn::QuantizedModel* qm;
    std::uint64_t count;
    std::size_t first_layer;
    std::size_t last;
    std::int64_t sample_elems;
    double* times;
  } ctx{&net, qm, count, first_layer, last, sample_elems, subbatch_time_s_.data()};
  Ctx* const pc = &ctx;
  engine_pool_->parallel_for(nsub, [pc](std::size_t sub0, std::size_t sub1) {
    // Index-ordered static chunks: sub-batch s always covers items
    // [s*cap, min((s+1)*cap, count)), no matter how many workers run.
    // Inputs are the position-based pattern, staged per worker; the model
    // and quantized lowering are shared read-only; all scratch is the
    // worker's thread-local workspace. Logits are therefore bit-identical
    // to the serial loop's for every sub-batch.
    nn::Workspace& ws = nn::detail::thread_workspace();
    for (std::size_t s = sub0; s < sub1; ++s) {
      const std::uint64_t done = static_cast<std::uint64_t>(s) * kMeterBatchCap;
      const int b = static_cast<int>(std::min(pc->count - done, kMeterBatchCap));
      float* in = thread_synth_input(pc->sample_elems, b);
      if (pc->qm != nullptr) {
        ws.configure(*pc->qm, b);
      } else {
        ws.configure(*pc->net, b);
      }
      const double t0 = wall_clock_s();
      const nn::ConstSpan out =
          pc->qm != nullptr ? pc->qm->run_range_into(ws, in, b, pc->first_layer, pc->last)
                            : pc->net->run_range_into(ws, in, b, pc->first_layer, pc->last);
      pc->times[s] = wall_clock_s() - t0;
      IOB_ENSURES(out.size > 0, "metered pass produced no output");
    }
  });
  // Merge in sub-batch index order — the same left-to-right reduction the
  // serial loop performs, independent of which worker finished when.
  double elapsed = 0.0;
  for (std::size_t s = 0; s < nsub; ++s) elapsed += subbatch_time_s_[s];
  return elapsed;
}

float* Hub::synth_input(std::int64_t sample_elems, int batch) {
  return staged_pattern(synth_, synth_filled_, sample_elems * batch);
}

void Hub::on_repartition(const std::string& stream, std::size_t split_at) {
  const auto it = session_index_.find(stream);
  if (it == session_index_.end()) return;
  Session& sess = sessions_[it->second];
  SessionConfig cfg = sess.cfg;
  if (cfg.net == nullptr) return;  // nothing to recompute the suffix from
  const nn::Model& net = *cfg.net;
  IOB_EXPECTS(split_at <= net.layer_count(), "repartition split point out of range");

  // The hub's share of the work moves with the boundary: suffix MACs, the
  // suffix's int8 weight footprint (1 B/param; only when weight traffic was
  // modelled to begin with), and the boundary-activation window size.
  const auto& profiles = net.profiles();
  std::uint64_t suffix_macs = 0;
  std::uint64_t suffix_params = 0;
  for (std::size_t i = split_at; i < net.layer_count(); ++i) {
    suffix_macs += profiles[i].macs;
    suffix_params += profiles[i].params;
  }
  cfg.split_layers = split_at;
  cfg.macs_per_inference = suffix_macs;
  cfg.bytes_per_inference =
      static_cast<std::uint64_t>(nn::activation_wire_bytes(pass_input_elems(net, split_at),
                                                           cfg.precision));
  if (cfg.weight_bytes != 0) cfg.weight_bytes = suffix_params;

  // A partial window staged at the old boundary size can never complete at
  // the new one — purge it and attribute the loss instead of silently
  // re-interpreting stale bytes as part of a differently-shaped activation.
  sess.stats.repartition_dropped_bytes += sess.staged.pending_bytes;
  sess.staged.pending_bytes = 0;
  sess.staged.frame_times.clear();
  ++sess.stats.repartitions;

  // Re-register: re-groups the session under the new split key (stats and
  // staging survive — add_session only replaces the config of a live slot).
  add_session(std::move(cfg));
}

void Hub::credit_leaf_compute(const std::string& stream, double kernel_time_s,
                              double compute_energy_j, double analytic_energy_j,
                              std::uint64_t inferences, std::uint64_t activation_bytes) {
  const auto it = session_index_.find(stream);
  if (it == session_index_.end()) return;
  SessionStats& st = sessions_[it->second].stats;
  st.leaf_kernel_time_s += kernel_time_s;
  st.leaf_compute_energy_j += compute_energy_j;
  st.leaf_analytic_compute_energy_j += analytic_energy_j;
  st.leaf_inferences += inferences;
  st.activation_bytes_shipped += activation_bytes;
}

void Hub::credit_degradation(const std::string& stream, std::uint64_t transitions,
                             double time_degraded_s, std::uint64_t frames_shed) {
  const auto it = session_index_.find(stream);
  if (it == session_index_.end()) return;
  SessionStats& st = sessions_[it->second].stats;
  st.degradation_transitions += transitions;
  st.degradation_time_s += time_degraded_s;
  st.frames_saved_by_shedding += frames_shed;
}

const SessionStats& Hub::session(const std::string& stream) const {
  const auto it = session_index_.find(stream);
  if (it == session_index_.end()) throw std::invalid_argument("unknown session: " + stream);
  return sessions_[it->second].stats;
}

double Hub::energy_j() const {
  // Base power accrues only while the hub is up. With zero downtime the
  // subtraction is exact, keeping the clean-path ledger bit-identical.
  double e = bus_.stats().hub_rx_energy_j + bus_.stats().hub_tx_energy_j +
             config_.base_power_w * (sim_.now() - downtime_s(sim_.now()));
  for (const auto& [group, members] : groups_) {
    (void)group;
    for (const std::size_t slot : members) {
      e += sessions_[slot].stats.compute_energy_j + sessions_[slot].stats.uplink_energy_j;
    }
  }
  return e;
}

double Hub::average_power_w() const {
  const double t = sim_.now();
  return t > 0 ? energy_j() / t : 0.0;
}

}  // namespace iob::net
