#include "net/hub.hpp"

#include <stdexcept>

#include "common/expect.hpp"

namespace iob::net {

Hub::Hub(sim::Simulator& sim, comm::TdmaBus& bus, HubConfig config)
    : sim_(sim), bus_(bus), config_(config) {
  IOB_EXPECTS(config_.energy_per_mac_j >= 0, "energy per MAC must be non-negative");
  bus_.set_delivery_handler(
      [this](const comm::Frame& f, sim::Time t) { on_frame(f, t); });
}

void Hub::add_session(SessionConfig config) {
  IOB_EXPECTS(!config.stream.empty(), "session stream tag must be non-empty");
  IOB_EXPECTS(config.bytes_per_inference > 0, "bytes per inference must be positive");
  const std::string key = config.stream;
  session_configs_[key] = std::move(config);
  session_stats_[key];   // default-construct
  window_bytes_[key] = 0;
}

void Hub::on_frame(const comm::Frame& frame, sim::Time delivered_at) {
  ++frames_received_;
  bytes_received_ += frame.payload_bytes;
  latency_s_.add(delivered_at - frame.created_s);

  const auto cfg_it = session_configs_.find(frame.stream);
  if (cfg_it == session_configs_.end()) return;
  const SessionConfig& cfg = cfg_it->second;
  SessionStats& st = session_stats_[frame.stream];
  st.bytes_in += frame.payload_bytes;

  auto& window = window_bytes_[frame.stream];
  window += frame.payload_bytes;
  while (window >= cfg.bytes_per_inference) {
    window -= cfg.bytes_per_inference;
    ++st.inferences;
    st.compute_energy_j += static_cast<double>(cfg.macs_per_inference) * config_.energy_per_mac_j;
    if (cfg.forward_to_cloud) {
      st.uplink_energy_j +=
          static_cast<double>(cfg.result_bytes) * 8.0 * config_.uplink_energy_per_bit_j;
    }
  }
}

const SessionStats& Hub::session(const std::string& stream) const {
  const auto it = session_stats_.find(stream);
  if (it == session_stats_.end()) throw std::invalid_argument("unknown session: " + stream);
  return it->second;
}

double Hub::energy_j() const {
  double e = bus_.stats().hub_rx_energy_j + bus_.stats().hub_tx_energy_j +
             config_.base_power_w * sim_.now();
  for (const auto& [stream, st] : session_stats_) {
    e += st.compute_energy_j + st.uplink_energy_j;
  }
  return e;
}

double Hub::average_power_w() const {
  const double t = sim_.now();
  return t > 0 ? energy_j() / t : 0.0;
}

}  // namespace iob::net
