#include "partition/cost_model.hpp"

#include "common/expect.hpp"

namespace iob::partition {

TransferSpec CostModel::leg_from_link(const comm::Link& link, double offered_bps,
                                      std::uint32_t payload_bytes) {
  IOB_EXPECTS(offered_bps > 0, "offered rate must be positive");
  TransferSpec t;
  t.name = link.spec().name;
  t.app_rate_bps = link.app_throughput_bps(payload_bytes);
  t.sender_energy_per_bit_j = link.effective_energy_per_app_bit_j(offered_bps, payload_bytes);
  t.receiver_energy_per_bit_j = link.spec().rx_energy_per_bit_j;
  t.fixed_latency_s = link.spec().wake_time_s + link.spec().per_frame_turnaround_s;
  return t;
}

TransferSpec CostModel::default_uplink() {
  return TransferSpec{"Wi-Fi uplink", 20e6, 30e-9, 30e-9, 20e-3};
}

}  // namespace iob::partition
