#include "partition/adaptive_isa.hpp"

#include <limits>
#include <utility>

#include "common/expect.hpp"

namespace iob::partition {

AdaptiveIsaController::AdaptiveIsaController(const IsaChooser& chooser, AdaptiveIsaConfig config)
    : chooser_(chooser), config_(std::move(config)) {
  IOB_EXPECTS(!config_.modes.empty(), "controller needs at least one mode");
  IOB_EXPECTS(config_.mission_time_s > 0, "mission time must be positive");
  IOB_EXPECTS(config_.hysteresis >= 1.0, "hysteresis factor must be >= 1");
  mode_power_w_.reserve(config_.modes.size());
  double prev = std::numeric_limits<double>::infinity();
  for (const auto& m : config_.modes) {
    const double p = chooser_.evaluate(m).total_power_w();
    IOB_EXPECTS(p <= prev * 1.0000001,
                "modes must be ordered by non-increasing total power");
    mode_power_w_.push_back(p);
    prev = p;
  }
}

double AdaptiveIsaController::glide_power_w(const energy::Battery& battery, double elapsed_s,
                                            double mission_time_s) {
  IOB_EXPECTS(elapsed_s >= 0, "elapsed time must be non-negative");
  const double remaining_t = mission_time_s - elapsed_s;
  if (remaining_t <= 0) return std::numeric_limits<double>::infinity();  // mission done
  return battery.remaining_j() / remaining_t;
}

std::size_t AdaptiveIsaController::update(const energy::Battery& battery, double elapsed_s) {
  const double budget = glide_power_w(battery, elapsed_s, config_.mission_time_s);

  // Step down while the current mode overshoots the glide budget.
  while (current_ + 1 < mode_power_w_.size() &&
         mode_power_w_[current_] > budget) {
    ++current_;
  }
  // Step back up only when the *richer* mode fits with hysteresis margin.
  while (current_ > 0 && mode_power_w_[current_ - 1] * config_.hysteresis < budget) {
    --current_;
  }
  return current_;
}

double AdaptiveIsaController::current_power_w() const { return mode_power_w_[current_]; }

}  // namespace iob::partition
