#pragma once
/// \file adaptive_split.hpp
/// Closed-loop split-point controller: the runtime counterpart of
/// `Partitioner` for a leaf that must survive a target mission time. Where
/// `AdaptiveIsaController` steps a node's ISA *output mode* along the energy
/// glide path, this controller steps the *partition point* — how many model
/// layers run on-body before the activation ships to the hub. Harvesting
/// surplus pulls computation onto the leaf (small activations, short radio
/// time); a sagging battery pushes layers back to the hub. Same discipline
/// as every other subsystem: the decision depends only on battery state and
/// elapsed time, so simulations remain deterministic and seed-forked.

#include <cstddef>
#include <vector>

#include "energy/battery.hpp"
#include "partition/partitioner.hpp"

namespace iob::partition {

/// One selectable split point with its leaf-side power at the deployment's
/// inference rate (compute energy for layers [0, split_at) plus the TX cost
/// of the boundary activation, times inferences per second).
struct SplitCandidate {
  std::size_t split_at = 0;   ///< k: first layer that runs on the hub
  double leaf_power_w = 0.0;  ///< leaf power draw this split sustains
};

struct AdaptiveSplitConfig {
  /// Candidates ordered by non-increasing leaf power: index 0 is the
  /// deployment's preferred (richest on-leaf) split, later entries shed
  /// leaf load. `candidates_from` builds this list from a `Partitioner`.
  std::vector<SplitCandidate> candidates;
  double mission_time_s = 30.0 * 86400.0;  ///< required node lifetime
  /// Hysteresis margin: step down when the glide path is missed, back up
  /// only when the richer candidate fits by this factor (no flapping).
  double hysteresis = 1.15;
};

class AdaptiveSplitController {
 public:
  explicit AdaptiveSplitController(AdaptiveSplitConfig config);

  /// Decide the split for the moment: `elapsed_s` into the mission with the
  /// battery at `battery`. Returns the selected candidate index (sticky —
  /// only moves when the hysteresis band is crossed).
  std::size_t update(const energy::Battery& battery, double elapsed_s);

  [[nodiscard]] const SplitCandidate& current() const {
    return config_.candidates[current_];
  }
  [[nodiscard]] std::size_t current_index() const { return current_; }
  [[nodiscard]] const SplitCandidate& candidate(std::size_t i) const {
    return config_.candidates.at(i);
  }
  [[nodiscard]] std::size_t candidate_count() const { return config_.candidates.size(); }

  /// Build the candidate list from the analytic cost model: every split
  /// point k of the partitioner's model, priced as
  /// `plan(k).leaf_energy_j() * inference_hz`, sorted by non-increasing
  /// leaf power and thinned to strictly decreasing entries (of equal-power
  /// splits the smallest k is kept). Deterministic.
  [[nodiscard]] static std::vector<SplitCandidate> candidates_from(const Partitioner& part,
                                                                   double inference_hz);

 private:
  AdaptiveSplitConfig config_;
  std::size_t current_ = 0;
};

}  // namespace iob::partition
