#pragma once
/// \file isa_chooser.hpp
/// Chooses the In-Sensor-Analytics operating mode for a leaf sensor stream:
/// ship raw, run a codec, extract features, or infer locally and ship only
/// results (paper Sec. V: "The ULP nodes in some cases may use low power
/// in-sensor analytics (ISA) or data compression ... to reduce the data
/// volume"). Each mode trades leaf compute (MACs/s) against link traffic
/// (bps); the chooser minimizes total leaf power for a given link.

#include <string>
#include <vector>

#include "comm/link.hpp"

namespace iob::partition {

/// One candidate ISA operating mode for a sensor stream.
struct IsaMode {
  std::string name;          ///< e.g. "raw", "adpcm 4:1", "mfcc", "local-kws"
  double output_rate_bps;    ///< traffic leaving the node in this mode
  double compute_macs_per_s; ///< sustained ISA compute to run the mode
};

/// Leaf power breakdown for a mode.
struct IsaEvaluation {
  IsaMode mode;
  double sense_power_w = 0.0;
  double compute_power_w = 0.0;
  double comm_power_w = 0.0;

  [[nodiscard]] double total_power_w() const {
    return sense_power_w + compute_power_w + comm_power_w;
  }
};

class IsaChooser {
 public:
  /// \param link body-bus link the node transmits on
  /// \param leaf_energy_per_mac_j leaf silicon efficiency (J/MAC)
  /// \param sensing_power_w fixed front-end power of this sensor
  IsaChooser(const comm::Link& link, double leaf_energy_per_mac_j, double sensing_power_w);

  [[nodiscard]] IsaEvaluation evaluate(const IsaMode& mode) const;

  /// Evaluate all modes; returns them ordered as given, with `best_index`
  /// set to the total-power minimizer.
  [[nodiscard]] std::vector<IsaEvaluation> evaluate_all(const std::vector<IsaMode>& modes) const;
  [[nodiscard]] std::size_t best_index(const std::vector<IsaMode>& modes) const;

 private:
  const comm::Link& link_;
  double energy_per_mac_j_;
  double sensing_power_w_;
};

}  // namespace iob::partition
