#include "partition/partitioner.hpp"

#include <limits>
#include <sstream>

#include "common/expect.hpp"
#include "nn/quantize.hpp"

namespace iob::partition {

std::string PartitionPlan::describe(const nn::Model& model) const {
  std::ostringstream os;
  const std::size_t n = model.layer_count();
  os << "leaf:[0," << split_leaf_hub << ") hub:[" << split_leaf_hub << "," << split_hub_cloud
     << ") cloud:[" << split_hub_cloud << "," << n << ")";
  if (split_leaf_hub == 0) os << " (full offload)";
  if (split_leaf_hub == n) os << " (all on leaf)";
  return os.str();
}

Partitioner::Partitioner(const nn::Model& model, CostModel cost)
    : model_(model), cost_(std::move(cost)) {
  IOB_EXPECTS(model_.layer_count() >= 1, "model must have layers");
  IOB_EXPECTS(cost_.leaf.energy_per_mac_j >= 0 && cost_.hub.energy_per_mac_j >= 0 &&
                  cost_.cloud.energy_per_mac_j >= 0,
              "venue energies must be non-negative");
  IOB_EXPECTS(cost_.leaf.macs_per_s > 0 && cost_.hub.macs_per_s > 0 && cost_.cloud.macs_per_s > 0,
              "venue throughputs must be positive");
  IOB_EXPECTS(cost_.leaf_hub.app_rate_bps > 0 && cost_.hub_cloud.app_rate_bps > 0,
              "transfer rates must be positive");
}

std::int64_t Partitioner::boundary_bytes(std::size_t split) const {
  const std::int64_t elems =
      split == 0 ? nn::shape_elems(model_.input_shape())
                 : nn::shape_elems(model_.profiles()[split - 1].output_shape);
  return nn::activation_wire_bytes(elems, cost_.transport);
}

PartitionPlan Partitioner::evaluate(std::size_t s1, std::size_t s2) const {
  const std::size_t n = model_.layer_count();
  IOB_EXPECTS(s1 <= s2 && s2 <= n, "invalid split points");

  PartitionPlan plan;
  plan.split_leaf_hub = s1;
  plan.split_hub_cloud = s2;

  std::uint64_t leaf_macs = 0, hub_macs = 0, cloud_macs = 0;
  const auto& profiles = model_.profiles();
  for (std::size_t i = 0; i < n; ++i) {
    if (i < s1) {
      leaf_macs += profiles[i].macs;
    } else if (i < s2) {
      hub_macs += profiles[i].macs;
    } else {
      cloud_macs += profiles[i].macs;
    }
  }

  plan.leaf_compute_j = static_cast<double>(leaf_macs) * cost_.leaf.energy_per_mac_j;
  plan.hub_compute_j = static_cast<double>(hub_macs) * cost_.hub.energy_per_mac_j;
  plan.cloud_compute_j = static_cast<double>(cloud_macs) * cost_.cloud.energy_per_mac_j;

  double latency = static_cast<double>(leaf_macs) / cost_.leaf.macs_per_s +
                   static_cast<double>(hub_macs) / cost_.hub.macs_per_s +
                   static_cast<double>(cloud_macs) / cost_.cloud.macs_per_s;

  // Leaf -> hub leg exists whenever any work leaves the leaf (s1 < n). The
  // result coming back is small (classification scores) and is folded into
  // the fixed latency.
  if (s1 < n) {
    plan.bytes_leaf_to_hub = boundary_bytes(s1);
    const double bits = static_cast<double>(plan.bytes_leaf_to_hub) * 8.0;
    plan.leaf_tx_j = bits * cost_.leaf_hub.sender_energy_per_bit_j;
    plan.hub_rx_j = bits * cost_.leaf_hub.receiver_energy_per_bit_j;
    latency += bits / cost_.leaf_hub.app_rate_bps + cost_.leaf_hub.fixed_latency_s;
  }

  // Hub -> cloud leg when any work runs in the cloud.
  if (s2 < n) {
    plan.bytes_hub_to_cloud = boundary_bytes(s2);
    const double bits = static_cast<double>(plan.bytes_hub_to_cloud) * 8.0;
    plan.hub_tx_j = bits * cost_.hub_cloud.sender_energy_per_bit_j;
    latency += bits / cost_.hub_cloud.app_rate_bps + cost_.hub_cloud.fixed_latency_s;
  }

  plan.latency_s = latency;
  return plan;
}

PartitionPlan Partitioner::optimize(Objective objective, double latency_deadline_s) const {
  IOB_EXPECTS(latency_deadline_s > 0, "deadline must be positive");
  const std::size_t n = model_.layer_count();

  PartitionPlan best;
  double best_score = std::numeric_limits<double>::infinity();
  PartitionPlan fastest;
  double fastest_latency = std::numeric_limits<double>::infinity();
  bool any_feasible = false;

  for (std::size_t s1 = 0; s1 <= n; ++s1) {
    for (std::size_t s2 = s1; s2 <= n; ++s2) {
      PartitionPlan plan = evaluate(s1, s2);
      if (plan.latency_s < fastest_latency) {
        fastest_latency = plan.latency_s;
        fastest = plan;
      }
      if (plan.latency_s > latency_deadline_s) continue;
      any_feasible = true;

      double score = 0.0;
      switch (objective) {
        case Objective::kLeafEnergy:
          score = plan.leaf_energy_j();
          break;
        case Objective::kTotalEnergy:
          score = plan.total_energy_j();
          break;
        case Objective::kLatency:
          score = plan.latency_s;
          break;
      }
      if (score < best_score) {
        best_score = score;
        best = plan;
      }
    }
  }

  if (!any_feasible) {
    fastest.feasible = false;
    return fastest;
  }
  return best;
}

PartitionPlan Partitioner::all_on_leaf() const {
  return evaluate(model_.layer_count(), model_.layer_count());
}

PartitionPlan Partitioner::full_offload() const { return evaluate(0, model_.layer_count()); }

}  // namespace iob::partition
