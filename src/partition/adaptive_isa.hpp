#pragma once
/// \file adaptive_isa.hpp
/// Closed-loop ISA mode controller: a leaf node that must survive a target
/// mission time watches its battery state of charge and steps its ISA
/// operating mode (raw -> codec -> features -> results-only) up or down to
/// stay on the energy glide path. This operationalizes the paper's "ISA as
/// appropriate" (Sec. I/V): the mode is not a design-time constant but a
/// runtime response to the energy budget.

#include <cstddef>
#include <string>
#include <vector>

#include "energy/battery.hpp"
#include "partition/isa_chooser.hpp"

namespace iob::partition {

struct AdaptiveIsaConfig {
  /// Candidate modes ordered from richest output (index 0: raw) to most
  /// aggressive reduction (last: results only). Power must be
  /// non-increasing along the list for the controller to make progress.
  std::vector<IsaMode> modes;
  double mission_time_s = 30.0 * 86400.0;  ///< required node lifetime
  /// Hysteresis margin: switch down when the glide path is missed by this
  /// factor, back up when beaten by it (prevents mode flapping).
  double hysteresis = 1.15;
};

class AdaptiveIsaController {
 public:
  /// \param chooser the leaf's power model (link + silicon + sensor)
  AdaptiveIsaController(const IsaChooser& chooser, AdaptiveIsaConfig config);

  /// Decide the mode for the moment: `elapsed_s` into the mission with the
  /// battery at `battery`. Returns the selected mode index (sticky between
  /// calls — only moves when the hysteresis band is crossed).
  std::size_t update(const energy::Battery& battery, double elapsed_s);

  /// Power (W) the node draws in the currently selected mode.
  [[nodiscard]] double current_power_w() const;

  [[nodiscard]] std::size_t current_mode() const { return current_; }
  [[nodiscard]] const IsaMode& mode(std::size_t i) const { return config_.modes.at(i); }
  [[nodiscard]] std::size_t mode_count() const { return config_.modes.size(); }

  /// The power budget (W) that exactly survives the remaining mission from
  /// the given state.
  [[nodiscard]] static double glide_power_w(const energy::Battery& battery, double elapsed_s,
                                            double mission_time_s);

 private:
  const IsaChooser& chooser_;
  AdaptiveIsaConfig config_;
  std::vector<double> mode_power_w_;
  std::size_t current_ = 0;
};

}  // namespace iob::partition
