#pragma once
/// \file cost_model.hpp
/// Execution-venue and transfer cost model for distributed inference across
/// the paper's three tiers: ULP leaf node -> on-body hub ("wearable brain")
/// -> fog/cloud (Sec. V). Energy-per-MAC values are silicon-class constants
/// (DESIGN.md Sec. 4); transfer legs wrap `comm::Link` instances so the
/// BLE-vs-Wi-R contrast flows straight into partitioning decisions.

#include <string>

#include "comm/link.hpp"
#include "nn/precision.hpp"

namespace iob::partition {

/// Where computation can run.
enum class Venue { kLeaf, kHub, kCloud };

struct VenueSpec {
  std::string name;
  double energy_per_mac_j;  ///< marginal energy per multiply-accumulate
  double macs_per_s;        ///< sustained inference throughput
};

/// A communication leg between adjacent venues. Zero-initialized: an unset
/// leg fails the Partitioner's rate precondition deterministically instead
/// of reading indeterminate values.
struct TransferSpec {
  std::string name;
  double app_rate_bps = 0.0;            ///< achievable application throughput
  double sender_energy_per_bit_j = 0.0; ///< charged to the sending side
  double receiver_energy_per_bit_j = 0.0;
  double fixed_latency_s = 0.0;         ///< per-transfer setup/turnaround
};

struct CostModel {
  VenueSpec leaf{"leaf (ULP MCU)", 20e-12, 50e6};      ///< 20 pJ/MAC, 50 MMAC/s
  VenueSpec hub{"hub (wearable brain)", 5e-12, 2e9};   ///< 5 pJ/MAC, 2 GMAC/s
  VenueSpec cloud{"cloud", 1e-12, 100e9};              ///< effectively unconstrained
  TransferSpec leaf_hub;   ///< body-bus leg (Wi-R or BLE); callers must set it
  TransferSpec hub_cloud = default_uplink();  ///< uplink leg (Wi-Fi/LTE class)
  /// Activation precision on the wire (`nn::Precision::kInt8` ships 1
  /// B/element quantized activations — the same precision the int8
  /// execution path (`nn::QuantizedModel`) actually computes in).
  nn::Precision transport = nn::Precision::kInt8;

  /// Build the leaf->hub leg from a body-bus link model at a given offered
  /// rate (the effective energy/bit includes protocol and idle overheads).
  static TransferSpec leg_from_link(const comm::Link& link, double offered_bps,
                                    std::uint32_t payload_bytes = 240);

  /// Default hub->cloud leg: Wi-Fi class, 20 Mb/s app, ~30 nJ/bit at the
  /// hub, 20 ms RTT-ish setup.
  static TransferSpec default_uplink();
};

}  // namespace iob::partition
