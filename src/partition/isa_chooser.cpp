#include "partition/isa_chooser.hpp"

#include <limits>

#include "common/expect.hpp"

namespace iob::partition {

IsaChooser::IsaChooser(const comm::Link& link, double leaf_energy_per_mac_j,
                       double sensing_power_w)
    : link_(link), energy_per_mac_j_(leaf_energy_per_mac_j), sensing_power_w_(sensing_power_w) {
  IOB_EXPECTS(leaf_energy_per_mac_j >= 0, "energy per MAC must be non-negative");
  IOB_EXPECTS(sensing_power_w >= 0, "sensing power must be non-negative");
}

IsaEvaluation IsaChooser::evaluate(const IsaMode& mode) const {
  IOB_EXPECTS(mode.output_rate_bps >= 0, "output rate must be non-negative");
  IOB_EXPECTS(mode.compute_macs_per_s >= 0, "compute rate must be non-negative");
  IsaEvaluation e;
  e.mode = mode;
  e.sense_power_w = sensing_power_w_;
  e.compute_power_w = mode.compute_macs_per_s * energy_per_mac_j_;
  e.comm_power_w =
      mode.output_rate_bps > 0 ? link_.stream_tx_power_w(mode.output_rate_bps) : 0.0;
  return e;
}

std::vector<IsaEvaluation> IsaChooser::evaluate_all(const std::vector<IsaMode>& modes) const {
  std::vector<IsaEvaluation> out;
  out.reserve(modes.size());
  for (const auto& m : modes) out.push_back(evaluate(m));
  return out;
}

std::size_t IsaChooser::best_index(const std::vector<IsaMode>& modes) const {
  IOB_EXPECTS(!modes.empty(), "need at least one mode");
  std::size_t best = 0;
  double best_power = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const double p = evaluate(modes[i]).total_power_w();
    if (p < best_power) {
      best_power = p;
      best = i;
    }
  }
  return best;
}

}  // namespace iob::partition
