#include "partition/adaptive_split.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/expect.hpp"
#include "partition/adaptive_isa.hpp"

namespace iob::partition {

AdaptiveSplitController::AdaptiveSplitController(AdaptiveSplitConfig config)
    : config_(std::move(config)) {
  IOB_EXPECTS(!config_.candidates.empty(), "controller needs at least one split candidate");
  IOB_EXPECTS(config_.mission_time_s > 0, "mission time must be positive");
  IOB_EXPECTS(config_.hysteresis >= 1.0, "hysteresis factor must be >= 1");
  double prev = std::numeric_limits<double>::infinity();
  for (const SplitCandidate& c : config_.candidates) {
    IOB_EXPECTS(c.leaf_power_w >= 0, "candidate leaf power must be non-negative");
    IOB_EXPECTS(c.leaf_power_w <= prev * 1.0000001,
                "candidates must be ordered by non-increasing leaf power");
    prev = c.leaf_power_w;
  }
}

std::size_t AdaptiveSplitController::update(const energy::Battery& battery, double elapsed_s) {
  // Same glide-path discipline as the ISA mode controller: the budget is
  // the power that exactly survives the remaining mission.
  const double budget =
      AdaptiveIsaController::glide_power_w(battery, elapsed_s, config_.mission_time_s);

  // Step down while the current split overshoots the glide budget.
  while (current_ + 1 < config_.candidates.size() &&
         config_.candidates[current_].leaf_power_w > budget) {
    ++current_;
  }
  // Step back up only when the richer split fits with hysteresis margin.
  while (current_ > 0 &&
         config_.candidates[current_ - 1].leaf_power_w * config_.hysteresis < budget) {
    --current_;
  }
  return current_;
}

std::vector<SplitCandidate> AdaptiveSplitController::candidates_from(const Partitioner& part,
                                                                     double inference_hz) {
  IOB_EXPECTS(inference_hz > 0, "inference rate must be positive");
  const std::size_t n = part.model().layer_count();
  std::vector<SplitCandidate> all;
  all.reserve(n + 1);
  for (std::size_t k = 0; k <= n; ++k) {
    const PartitionPlan plan = part.evaluate(k, n);
    all.push_back({k, plan.leaf_energy_j() * inference_hz});
  }
  std::stable_sort(all.begin(), all.end(), [](const SplitCandidate& a, const SplitCandidate& b) {
    if (a.leaf_power_w != b.leaf_power_w) return a.leaf_power_w > b.leaf_power_w;
    return a.split_at < b.split_at;
  });
  // Thin to strictly decreasing power: equal-power candidates add no
  // glide-path resolution, and the first (smallest k) wins deterministically.
  std::vector<SplitCandidate> out;
  for (const SplitCandidate& c : all) {
    if (out.empty() || c.leaf_power_w < out.back().leaf_power_w) out.push_back(c);
  }
  return out;
}

}  // namespace iob::partition
