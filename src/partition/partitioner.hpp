#pragma once
/// \file partitioner.hpp
/// DNN partitioning across leaf / hub / cloud: pick the two split points
/// (s1, s2) so layers [0, s1) run on the leaf, [s1, s2) on the hub and
/// [s2, n) in the cloud, minimizing the chosen objective subject to a
/// latency deadline. This optimizer *is* the architectural argument of the
/// paper made executable: with BLE-class transfer energy the optimum pulls
/// compute onto the node (today's wearables); with Wi-R-class energy the
/// optimum is full offload to the wearable brain (s1 = 0) — the A1 bench
/// sweeps exactly this.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.hpp"
#include "partition/cost_model.hpp"

namespace iob::partition {

enum class Objective {
  kLeafEnergy,   ///< minimize leaf-node energy per inference (battery life)
  kTotalEnergy,  ///< minimize system energy per inference
  kLatency,      ///< minimize end-to-end latency
};

struct PartitionPlan {
  std::size_t split_leaf_hub = 0;   ///< s1: first layer on the hub
  std::size_t split_hub_cloud = 0;  ///< s2: first layer in the cloud (== n: none)

  double leaf_compute_j = 0.0;
  double leaf_tx_j = 0.0;
  double hub_compute_j = 0.0;
  double hub_rx_j = 0.0;
  double hub_tx_j = 0.0;
  double cloud_compute_j = 0.0;
  double latency_s = 0.0;
  std::int64_t bytes_leaf_to_hub = 0;
  std::int64_t bytes_hub_to_cloud = 0;
  bool feasible = true;  ///< meets the deadline

  [[nodiscard]] double leaf_energy_j() const { return leaf_compute_j + leaf_tx_j; }
  [[nodiscard]] double total_energy_j() const {
    return leaf_energy_j() + hub_compute_j + hub_rx_j + hub_tx_j + cloud_compute_j;
  }
  [[nodiscard]] std::string describe(const nn::Model& model) const;
};

class Partitioner {
 public:
  Partitioner(const nn::Model& model, CostModel cost);

  /// Cost of a specific (s1, s2) split; s1 <= s2 <= layer_count().
  [[nodiscard]] PartitionPlan evaluate(std::size_t split_leaf_hub,
                                       std::size_t split_hub_cloud) const;

  /// Exhaustive optimum over all (s1, s2) pairs (O(n^2) with n ~ 25 layers).
  /// Infeasible plans (deadline violations) are skipped unless *no* plan is
  /// feasible, in which case the latency-minimal plan is returned with
  /// `feasible == false`.
  [[nodiscard]] PartitionPlan optimize(Objective objective,
                                       double latency_deadline_s = 1e9) const;

  /// All-on-leaf and all-on-hub reference plans (the two poles of Fig. 1).
  [[nodiscard]] PartitionPlan all_on_leaf() const;
  [[nodiscard]] PartitionPlan full_offload() const;

  [[nodiscard]] const nn::Model& model() const { return model_; }
  [[nodiscard]] const CostModel& cost() const { return cost_; }

  /// Bytes crossing the boundary *into* layer `split` (activation out of
  /// layer split-1, or the model input when split == 0), priced at the cost
  /// model's transport precision in the executable wire format
  /// (`nn::activation_wire_bytes`): int8 transport carries an 8-byte affine
  /// params header ahead of the 1 B/element payload, f32 ships raw floats.
  /// The split differential test holds this equal to the byte size of the
  /// actually serialized boundary tensor.
  [[nodiscard]] std::int64_t boundary_bytes(std::size_t split) const;

 private:
  const nn::Model& model_;
  CostModel cost_;
};

}  // namespace iob::partition
