#include "energy/power_rail.hpp"

#include <utility>

#include "common/expect.hpp"

namespace iob::energy {

std::size_t PowerRailMonitor::add_rail(std::string name) {
  rails_.push_back(Rail{std::move(name), {}});
  rails_.back().series.update(0.0, 0.0);
  return rails_.size() - 1;
}

void PowerRailMonitor::set_power(std::size_t idx, double t, double power_w) {
  IOB_EXPECTS(idx < rails_.size(), "rail index out of range");
  IOB_EXPECTS(power_w >= 0.0, "rail power must be non-negative");
  rails_[idx].series.update(t, power_w);
}

double PowerRailMonitor::total_power_w() const {
  double sum = 0.0;
  for (const auto& r : rails_) sum += r.series.current();
  return sum;
}

double PowerRailMonitor::rail_energy_j(std::size_t idx, double t) const {
  IOB_EXPECTS(idx < rails_.size(), "rail index out of range");
  return rails_[idx].series.integral_until(t);
}

double PowerRailMonitor::total_energy_j(double t) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < rails_.size(); ++i) sum += rail_energy_j(i, t);
  return sum;
}

double PowerRailMonitor::rail_average_w(std::size_t idx, double t) const {
  IOB_EXPECTS(idx < rails_.size(), "rail index out of range");
  IOB_EXPECTS(t > 0.0, "averaging window must be positive");
  return rail_energy_j(idx, t) / t;
}

const std::string& PowerRailMonitor::rail_name(std::size_t idx) const {
  IOB_EXPECTS(idx < rails_.size(), "rail index out of range");
  return rails_[idx].name;
}

}  // namespace iob::energy
