#include "energy/battery.hpp"

#include <algorithm>
#include <limits>

#include "common/expect.hpp"

namespace iob::energy {

Battery::Battery(double capacity_mah, double nominal_v, double usable_fraction,
                 double self_discharge_per_year)
    : capacity_mah_(capacity_mah),
      nominal_v_(nominal_v),
      usable_fraction_(usable_fraction),
      self_discharge_per_year_(self_discharge_per_year),
      rated_energy_j_(units::battery_energy_j(capacity_mah, nominal_v)),
      remaining_j_(rated_energy_j_ * usable_fraction) {
  IOB_EXPECTS(capacity_mah > 0.0, "battery capacity must be positive");
  IOB_EXPECTS(nominal_v > 0.0, "battery voltage must be positive");
  IOB_EXPECTS(usable_fraction > 0.0 && usable_fraction <= 1.0, "usable fraction must be in (0, 1]");
  IOB_EXPECTS(self_discharge_per_year >= 0.0 && self_discharge_per_year < 1.0,
              "self-discharge fraction must be in [0, 1)");
}

Battery Battery::coin_cell_1000mah() { return Battery(1000.0, 3.0); }

double Battery::soc() const { return remaining_j_ / usable_energy_j(); }

double Battery::discharge(double energy_j) {
  IOB_EXPECTS(energy_j >= 0.0, "discharge energy must be non-negative");
  const double supplied = std::min(energy_j, remaining_j_);
  remaining_j_ -= supplied;
  return supplied;
}

double Battery::charge(double energy_j) {
  IOB_EXPECTS(energy_j >= 0.0, "charge energy must be non-negative");
  const double headroom = usable_energy_j() - remaining_j_;
  const double stored = std::min(energy_j, headroom);
  remaining_j_ += stored;
  return stored;
}

double Battery::self_discharge_w() const {
  return rated_energy_j_ * self_discharge_per_year_ / units::year;
}

double Battery::time_to_empty_s(double power_w) const {
  const double total = power_w + self_discharge_w();
  if (total <= 0.0) return std::numeric_limits<double>::infinity();
  return remaining_j_ / total;
}

}  // namespace iob::energy
