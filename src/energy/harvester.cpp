#include "energy/harvester.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expect.hpp"

namespace iob::energy {

std::vector<double> office_diurnal_profile() {
  // Hours 0..23: night, commute ramp, office plateau, evening taper.
  return {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.3, 0.7, 1.0, 1.0, 1.0,
          1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.3, 0.1, 0.0};
}

Harvester::Harvester(HarvesterParams params) : params_(std::move(params)) {
  IOB_EXPECTS(params_.mean_power_w >= 0.0, "harvest power must be non-negative");
  IOB_EXPECTS(params_.availability >= 0.0 && params_.availability <= 1.0,
              "availability must be in [0, 1]");
  IOB_EXPECTS(params_.relative_sigma >= 0.0, "relative sigma must be non-negative");
  if (!params_.hourly_profile.empty()) {
    IOB_EXPECTS(params_.hourly_profile.size() == 24, "hourly profile needs 24 entries");
    double sum = 0.0;
    for (const double h : params_.hourly_profile) {
      IOB_EXPECTS(h >= 0.0 && h <= 1.0, "profile entries must be in [0, 1]");
      sum += h;
    }
    profile_mean_ = sum / 24.0;
  }
}

double Harvester::average_power_w() const {
  return params_.mean_power_w * params_.availability * profile_mean_;
}

double Harvester::profile_at(double sim_time_s) const {
  if (params_.hourly_profile.empty()) return 1.0;
  const double day_s = std::fmod(sim_time_s, 24.0 * 3600.0);
  const auto hour = static_cast<std::size_t>(day_s / 3600.0) % 24;
  return params_.hourly_profile[hour];
}

double Harvester::sample_power_w(sim::Rng& rng, double sim_time_s) const {
  const double gate = params_.availability * profile_at(sim_time_s);
  if (gate <= 0.0 || !rng.bernoulli(std::min(1.0, gate))) return 0.0;
  const double p =
      rng.normal(params_.mean_power_w, params_.relative_sigma * params_.mean_power_w);
  return std::max(0.0, p);
}

double Harvester::sample_energy_j(sim::Rng& rng, double dt_s, double sim_time_s) const {
  IOB_EXPECTS(dt_s >= 0.0, "interval must be non-negative");
  return sample_power_w(rng, sim_time_s) * dt_s;
}

std::string Harvester::to_string(HarvestSource s) {
  switch (s) {
    case HarvestSource::kIndoorPhotovoltaic: return "indoor-PV";
    case HarvestSource::kThermoelectric: return "body-TEG";
    case HarvestSource::kRfAmbient: return "ambient-RF";
  }
  return "?";
}

}  // namespace iob::energy
