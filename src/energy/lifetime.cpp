#include "energy/lifetime.hpp"

#include <limits>

#include "common/expect.hpp"

namespace iob::energy {

double battery_life_s(const Battery& battery, double platform_power_w, double harvest_average_w) {
  IOB_EXPECTS(platform_power_w >= 0.0, "platform power must be non-negative");
  IOB_EXPECTS(harvest_average_w >= 0.0, "harvest power must be non-negative");
  const double net = platform_power_w - harvest_average_w;
  if (net <= 0.0) return std::numeric_limits<double>::infinity();
  return battery.usable_energy_j() / net;
}

double battery_life_days(const Battery& battery, double platform_power_w,
                         double harvest_average_w) {
  return battery_life_s(battery, platform_power_w, harvest_average_w) / units::day;
}

LifeClass classify(double life_s) {
  IOB_EXPECTS(life_s >= 0.0, "life must be non-negative");
  using namespace iob::units;
  if (life_s > year) return LifeClass::kPerpetual;
  if (life_s > 30.0 * day) return LifeClass::kMultiMonth;
  if (life_s > week) return LifeClass::kAllWeek;
  if (life_s > 2.0 * day) return LifeClass::kMultiDay;
  if (life_s > 10.0 * hour) return LifeClass::kAllDay;
  if (life_s > 5.0 * hour) return LifeClass::kSubDay;
  return LifeClass::kHours3to5;
}

std::string to_string(LifeClass c) {
  switch (c) {
    case LifeClass::kHours3to5: return "3-5 hr";
    case LifeClass::kSubDay: return "<10 hr";
    case LifeClass::kAllDay: return "all-day";
    case LifeClass::kMultiDay: return "multi-day";
    case LifeClass::kAllWeek: return "all-week";
    case LifeClass::kMultiMonth: return "months";
    case LifeClass::kPerpetual: return "perpetual (>1 yr)";
  }
  return "?";
}

bool is_perpetual(double life_s) { return life_s > units::year; }

double power_budget_w(const Battery& battery, double target_life_s) {
  IOB_EXPECTS(target_life_s > 0.0, "target life must be positive");
  return battery.usable_energy_j() / target_life_s;
}

}  // namespace iob::energy
