#pragma once
/// \file harvester.hpp
/// Energy-harvesting model. Paper Sec. V: "With current energy harvesting
/// modalities, 10-200 uW power harvesting is possible in indoor conditions."
/// A node whose average platform power sits below its harvest average is
/// charging-free — the paper's "perpetually operable" end state.

#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/rng.hpp"

namespace iob::energy {

enum class HarvestSource {
  kIndoorPhotovoltaic,  ///< indoor light, strongly diurnal
  kThermoelectric,      ///< body-heat TEG, steady while worn
  kRfAmbient,           ///< ambient RF scavenging, weak and bursty
};

struct HarvesterParams {
  HarvestSource source = HarvestSource::kIndoorPhotovoltaic;
  /// Mean harvested power while the source is active (W). Defaults span the
  /// paper's 10-200 uW indoor window.
  double mean_power_w = 50.0 * units::uW;
  /// Fraction of time the source is available (lights on / device worn).
  double availability = 0.7;
  /// Relative power fluctuation while active (sigma / mean).
  double relative_sigma = 0.2;
  /// Optional 24-entry hour-of-day availability multipliers in [0, 1]
  /// (indoor light diurnality: dark nights, bright office hours). Empty
  /// means a flat profile.
  std::vector<double> hourly_profile{};
};

/// Representative office-worker indoor-PV profile: dark 22:00-07:00, dim
/// mornings/evenings, full availability 09:00-18:00.
std::vector<double> office_diurnal_profile();

class Harvester {
 public:
  explicit Harvester(HarvesterParams params = {});

  /// Long-run average harvested power (W): mean * availability * profile
  /// mean.
  [[nodiscard]] double average_power_w() const;

  /// Availability multiplier at a simulation time (wraps modulo 24 h).
  [[nodiscard]] double profile_at(double sim_time_s) const;

  /// Sample instantaneous harvested power (W) for one interval; stochastic
  /// but non-negative. Used by the DES energy loop. `sim_time_s` applies
  /// the diurnal profile (ignored for flat profiles).
  double sample_power_w(sim::Rng& rng, double sim_time_s = 0.0) const;

  /// Energy harvested over `dt` seconds using one stochastic draw.
  double sample_energy_j(sim::Rng& rng, double dt_s, double sim_time_s = 0.0) const;

  [[nodiscard]] const HarvesterParams& params() const { return params_; }

  static std::string to_string(HarvestSource s);

 private:
  HarvesterParams params_;
  double profile_mean_ = 1.0;
};

}  // namespace iob::energy
