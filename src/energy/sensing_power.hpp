#pragma once
/// \file sensing_power.hpp
/// Sensing-front-end power as a function of produced data rate — the survey
/// model behind the paper's Fig. 3 ("The sensing power is characterized as a
/// function of data rate with a survey of past literature and commercially
/// available analog front-ends [29]").
///
/// The survey is encoded as log-log anchor points and interpolated as
/// piecewise power laws. Anchors (documented in DESIGN.md Sec. 4) span the
/// biopotential AFE class (uW at kb/s) through microphone/codec class (mW at
/// ~Mb/s) to ULP camera class (tens of mW at ~10 Mb/s).

#include "common/interp.hpp"
#include "common/units.hpp"

namespace iob::energy {

class SensingPowerModel {
 public:
  /// Survey defaults (DESIGN.md Sec. 4 anchor table).
  SensingPowerModel();

  /// Custom survey table: (data-rate bps, power W) anchors, increasing rate.
  explicit SensingPowerModel(common::AnchorTable anchors);

  /// Sensing power (W) to produce `rate_bps` of sensor data.
  [[nodiscard]] double power_w(double rate_bps) const;

  /// Effective sensing energy per bit (J/bit) at the given rate.
  [[nodiscard]] double energy_per_bit_j(double rate_bps) const;

  /// Local scaling exponent d(log P)/d(log R) at the given rate (how
  /// super-linear the sensing cost is in that regime).
  [[nodiscard]] double scaling_exponent(double rate_bps) const;

  [[nodiscard]] const common::AnchorTable& anchors() const { return interp_.anchors(); }

 private:
  common::LogLogInterpolator interp_;
};

/// Representative sensor classes with their native (uncompressed) data rates,
/// used to place the paper's device markers on the Fig. 3 curve.
struct SensorClass {
  const char* name;
  double data_rate_bps;
};

/// The device classes Fig. 3 calls out, at their typical raw data rates.
/// ECG patch: 12-bit @ 250 Hz x 2ch ~ 6 kb/s; ring/tracker (PPG+IMU bursts)
/// ~ 40 kb/s; audio: 16-bit @ 16 kHz = 256 kb/s; ExG multichannel ~ 1 Mb/s;
/// video: MJPEG-compressed QVGA @ 15-30 fps ~ 4-10 Mb/s.
inline constexpr SensorClass kBiopotentialPatch{"biopotential patch (ECG/EMG)", 6.0 * units::kbps};
inline constexpr SensorClass kSmartRing{"smart ring / fitness tracker", 40.0 * units::kbps};
inline constexpr SensorClass kAudioNode{"audio-input AI node (pin/pendant)", 256.0 * units::kbps};
inline constexpr SensorClass kExgArray{"multi-channel ExG array", 1.0 * units::Mbps};
inline constexpr SensorClass kVideoNode{"AI video node (MJPEG QVGA)", 10.0 * units::Mbps};

}  // namespace iob::energy
