#pragma once
/// \file lifetime.hpp
/// Battery-life projection and the paper's operability taxonomy.
///
/// Sec. V: "We further consider devices with more than a year of battery
/// life as perpetually operable." Fig. 2/3 bucket devices into 3-5 h,
/// <10 h, all-day, all-week, and perpetual classes; `classify()` reproduces
/// those buckets so benches can print the same labels the figures use.

#include <string>

#include "common/units.hpp"
#include "energy/battery.hpp"

namespace iob::energy {

enum class LifeClass {
  kHours3to5,     ///< 3-5 h (MR headsets, smart glasses)
  kSubDay,        ///< <10 h (smartphones under heavy use)
  kAllDay,        ///< ~1-2 days
  kMultiDay,      ///< 2-7 days
  kAllWeek,       ///< ~1-4 weeks
  kMultiMonth,    ///< 1-12 months
  kPerpetual,     ///< > 1 year (paper's perpetual-operability threshold)
};

/// Battery life (s) at a constant platform power, optionally offset by a
/// harvested average. If harvesting covers the load the result is +inf.
double battery_life_s(const Battery& battery, double platform_power_w,
                      double harvest_average_w = 0.0);

/// Same in days (Fig. 3's y-axis).
double battery_life_days(const Battery& battery, double platform_power_w,
                         double harvest_average_w = 0.0);

/// Map a battery life to the paper's bucket taxonomy.
LifeClass classify(double life_s);

/// Human-readable bucket label, matching the figure annotations
/// ("all-week", "perpetually operable", ...).
std::string to_string(LifeClass c);

/// Paper threshold: life > 1 year.
bool is_perpetual(double life_s);

/// The platform power (W) that exactly meets a target life for a battery —
/// used to find the perpetual-region boundary on the Fig. 3 sweep.
double power_budget_w(const Battery& battery, double target_life_s);

}  // namespace iob::energy
