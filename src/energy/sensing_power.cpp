#include "energy/sensing_power.hpp"

#include "common/expect.hpp"

namespace iob::energy {

namespace {

common::AnchorTable survey_defaults() {
  using namespace iob::units;
  // (data rate bps, sensing power W). See DESIGN.md Sec. 4 for provenance:
  // biopotential AFEs (sub-10 uW at kb/s), inertial/optical PPG combos,
  // always-on audio codecs (~mW), ULP image sensors (tens of mW at Mb/s+).
  return {
      {100.0 * bps, 0.5 * uW}, {1.0 * kbps, 2.0 * uW},  {10.0 * kbps, 10.0 * uW},
      {100.0 * kbps, 150.0 * uW}, {1.0 * Mbps, 3.0 * mW}, {4.0 * Mbps, 15.0 * mW},
      {10.0 * Mbps, 80.0 * mW},
  };
}

}  // namespace

SensingPowerModel::SensingPowerModel() : interp_(survey_defaults()) {}

SensingPowerModel::SensingPowerModel(common::AnchorTable anchors) : interp_(std::move(anchors)) {}

double SensingPowerModel::power_w(double rate_bps) const {
  IOB_EXPECTS(rate_bps > 0.0, "data rate must be positive");
  return interp_(rate_bps);
}

double SensingPowerModel::energy_per_bit_j(double rate_bps) const {
  return power_w(rate_bps) / rate_bps;
}

double SensingPowerModel::scaling_exponent(double rate_bps) const {
  IOB_EXPECTS(rate_bps > 0.0, "data rate must be positive");
  return interp_.local_exponent(rate_bps);
}

}  // namespace iob::energy
