#pragma once
/// \file power_rail.hpp
/// Per-component power accounting for a device platform. Each subsystem
/// (sensor AFE, CPU/ISA, radio/Wi-R, actuator) is a named rail whose
/// instantaneous power changes over simulation time; the monitor integrates
/// per-rail energy so tests can assert energy conservation (battery drop ==
/// sum of rail integrals) and benches can print Fig.-1-style breakdowns.

#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace iob::energy {

class PowerRailMonitor {
 public:
  /// Register a rail; returns its index. Rails start at 0 W at time 0.
  std::size_t add_rail(std::string name);

  /// Record that rail `idx` changed to `power_w` at time `t`.
  void set_power(std::size_t idx, double t, double power_w);

  /// Instantaneous total power (W) across rails.
  [[nodiscard]] double total_power_w() const;

  /// Energy (J) consumed by rail `idx` in [0, t].
  [[nodiscard]] double rail_energy_j(std::size_t idx, double t) const;

  /// Total energy (J) across rails in [0, t].
  [[nodiscard]] double total_energy_j(double t) const;

  /// Time-averaged power (W) of rail `idx` over [0, t].
  [[nodiscard]] double rail_average_w(std::size_t idx, double t) const;

  [[nodiscard]] const std::string& rail_name(std::size_t idx) const;
  [[nodiscard]] std::size_t rail_count() const { return rails_.size(); }

 private:
  struct Rail {
    std::string name;
    sim::TimeWeighted series;
  };
  std::vector<Rail> rails_;
};

}  // namespace iob::energy
