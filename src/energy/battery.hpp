#pragma once
/// \file battery.hpp
/// Battery model: capacity, state-of-charge integration, charge/discharge,
/// and depletion detection. Fig. 3 of the paper assumes a 1000 mAh coin
/// cell [31]; `Battery::coin_cell_1000mah()` provides exactly that.

#include "common/units.hpp"

namespace iob::energy {

class Battery {
 public:
  /// \param capacity_mah rated capacity (mAh), > 0
  /// \param nominal_v nominal terminal voltage (V), > 0
  /// \param usable_fraction fraction of rated energy extractable before
  ///        cutoff (models discharge-curve cutoff); in (0, 1].
  /// \param self_discharge_per_year fractional capacity loss per year from
  ///        chemistry alone (lithium coin cells ~1%/yr); bounds the
  ///        "perpetual" regime at the shelf-life scale. In [0, 1).
  Battery(double capacity_mah, double nominal_v, double usable_fraction = 1.0,
          double self_discharge_per_year = 0.0);

  /// The paper's Fig. 3 battery: 1000 mAh high-capacity coin cell, 3 V.
  static Battery coin_cell_1000mah();

  /// Rated energy (J).
  [[nodiscard]] double rated_energy_j() const { return rated_energy_j_; }

  /// Usable energy when full (J).
  [[nodiscard]] double usable_energy_j() const { return rated_energy_j_ * usable_fraction_; }

  /// Remaining usable energy (J).
  [[nodiscard]] double remaining_j() const { return remaining_j_; }

  /// State of charge in [0, 1] relative to usable energy.
  [[nodiscard]] double soc() const;

  [[nodiscard]] bool depleted() const { return remaining_j_ <= 0.0; }

  /// Withdraw `energy_j` (>= 0). Returns the energy actually supplied
  /// (may be less than requested if the battery runs dry).
  double discharge(double energy_j);

  /// Deposit `energy_j` (>= 0) of harvested/charger energy; clamps at full.
  /// Returns the energy actually stored.
  double charge(double energy_j);

  /// Time (s) to depletion at constant `power_w` from the current state,
  /// including the self-discharge drain; +inf only if both are zero.
  [[nodiscard]] double time_to_empty_s(double power_w) const;

  /// Equivalent constant power (W) of chemical self-discharge.
  [[nodiscard]] double self_discharge_w() const;

  [[nodiscard]] double capacity_mah() const { return capacity_mah_; }
  [[nodiscard]] double nominal_v() const { return nominal_v_; }

 private:
  double capacity_mah_;
  double nominal_v_;
  double usable_fraction_;
  double self_discharge_per_year_;
  double rated_energy_j_;
  double remaining_j_;
};

}  // namespace iob::energy
