#include "energy/duty_cycle.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace iob::energy {

double average_power_w(const DutyCycleSpec& spec, double duty, double wakes_per_s) {
  IOB_EXPECTS(duty >= 0.0 && duty <= 1.0, "duty factor must be in [0, 1]");
  IOB_EXPECTS(wakes_per_s >= 0.0, "wake rate must be non-negative");
  return spec.active_power_w * duty + spec.sleep_power_w * (1.0 - duty) +
         spec.wake_energy_j * wakes_per_s;
}

double required_duty(double rate_bps, double link_rate_bps) {
  IOB_EXPECTS(rate_bps >= 0.0, "rate must be non-negative");
  IOB_EXPECTS(link_rate_bps > 0.0, "link rate must be positive");
  return std::clamp(rate_bps / link_rate_bps, 0.0, 1.0);
}

double radio_average_power_w(const DutyCycleSpec& spec, double rate_bps, double link_rate_bps,
                             double event_interval_s) {
  IOB_EXPECTS(event_interval_s > 0.0, "event interval must be positive");
  const double duty = required_duty(rate_bps, link_rate_bps);
  // Wake events only happen while there is traffic to move; an idle radio
  // still wakes to keep the connection alive, which is exactly the BLE
  // keep-alive cost — model it as one wake per interval regardless.
  const double wakes_per_s = 1.0 / event_interval_s;
  // Enforce the minimum burst: tiny payloads still cost min_active_s of
  // active time per event.
  const double min_duty = std::min(1.0, spec.min_active_s * wakes_per_s);
  return average_power_w(spec, std::max(duty, min_duty), wakes_per_s);
}

}  // namespace iob::energy
