#pragma once
/// \file duty_cycle.hpp
/// Duty-cycling math for bursty components (radios especially). Today's
/// BLE wearables survive by sleeping between connection events; the model
/// captures the active/sleep/wake tradeoff so the conventional-architecture
/// baseline in `core/` is charitable (it duty-cycles its radio optimally)
/// and the Wi-R comparison remains honest.

#include "common/units.hpp"

namespace iob::energy {

struct DutyCycleSpec {
  double active_power_w;   ///< power while active
  double sleep_power_w;    ///< power while sleeping (> 0: leakage, RTC)
  double wake_energy_j;    ///< fixed energy to wake + resynchronize
  double min_active_s;     ///< minimum useful active burst length
};

/// Average power when the component must be active a fraction `duty` of the
/// time, waking `wakes_per_s` times per second.
double average_power_w(const DutyCycleSpec& spec, double duty, double wakes_per_s);

/// Duty factor required to move `rate_bps` of traffic over a link of
/// `link_rate_bps` capacity (clamped to [0, 1]).
double required_duty(double rate_bps, double link_rate_bps);

/// Average power for a radio moving `rate_bps` over a `link_rate_bps` link
/// with `event_interval_s` between wake events (BLE connection-interval
/// style). Includes the wake-energy amortization.
double radio_average_power_w(const DutyCycleSpec& spec, double rate_bps, double link_rate_bps,
                             double event_interval_s);

}  // namespace iob::energy
