#pragma once
/// \file sweep_runner.hpp
/// Deterministic parallel sweep engine. Fans independent design-space
/// points across a fixed TaskPool and merges results in index order, so the
/// output vector is byte-identical to a serial run at any thread count.
///
/// The determinism contract: each point i must be a pure function of
/// (inputs, i) — anything stochastic inside a point must draw from an RNG
/// derived with `point_seed(base_seed, i)` (Rng::fork under the hood), never
/// from shared state. Every sweep in the repo (Fig. 3 curve, partition
/// sweep, T4 network scaling) satisfies this by construction: a sweep point
/// builds its own Simulator.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "sim/task_pool.hpp"

namespace iob::core {

/// A pending batch from `SweepRunner::map_async`: a move-only handle whose
/// `get()` blocks until the batch's `map` completes and yields the
/// index-ordered result vector (identical bytes to a synchronous `map`).
template <typename R>
class BatchFuture {
 public:
  BatchFuture() = default;
  explicit BatchFuture(std::future<std::vector<R>> future) : future_(std::move(future)) {}

  /// True while a batch is attached and not yet collected.
  [[nodiscard]] bool valid() const { return future_.valid(); }

  /// Block until the batch finishes; returns out[i] = fn(i) in index order.
  [[nodiscard]] std::vector<R> get() { return future_.get(); }

 private:
  std::future<std::vector<R>> future_;
};

class SweepRunner {
 public:
  /// \param threads thread count for the underlying pool (0 = hardware
  ///        concurrency, 1 = serial execution on the caller).
  explicit SweepRunner(std::size_t threads = 0);

  /// Threads participating in each sweep.
  [[nodiscard]] std::size_t threads() const { return pool_->size(); }

  /// out[i] = fn(i) for i in [0, n), computed in parallel, merged in index
  /// order. R must be default-constructible and movable.
  template <typename R>
  std::vector<R> map(std::size_t n, const std::function<R(std::size_t)>& fn) const {
    std::vector<R> out(n);
    pool_->parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
    });
    return out;
  }

  /// Launch `map(n, fn)` on a helper thread and return immediately. The
  /// result (collected via BatchFuture::get) is byte-identical to the
  /// synchronous `map` — same pool, same chunking, same index-order merge —
  /// so overlapping execution with downstream folding costs no determinism.
  ///
  /// At most ONE batch may be in flight per runner: the underlying TaskPool
  /// is not reentrant, so callers must `get()` the previous batch before
  /// issuing another `map`/`map_async`. The calling thread is free to do
  /// unrelated work (fold summaries, spill shards) while the batch runs —
  /// the overlap `Fleet::run_streaming` is built on.
  template <typename R>
  [[nodiscard]] BatchFuture<R> map_async(std::size_t n, std::function<R(std::size_t)> fn) const {
    return BatchFuture<R>(std::async(
        std::launch::async, [this, n, fn = std::move(fn)] { return map<R>(n, fn); }));
  }

  /// Convenience: map over an explicit vector of inputs.
  template <typename R, typename T>
  std::vector<R> map_over(const std::vector<T>& inputs,
                          const std::function<R(const T&, std::size_t)>& fn) const {
    return map<R>(inputs.size(),
                  [&](std::size_t i) { return fn(inputs[i], i); });
  }

  /// Deterministic per-point seed: hashes `base_seed` with the point index
  /// via Rng::fork, so sibling points get statistically independent streams
  /// and the mapping is identical at every thread count.
  [[nodiscard]] static std::uint64_t point_seed(std::uint64_t base_seed, std::size_t index);

  [[nodiscard]] sim::TaskPool& pool() const { return *pool_; }

 private:
  std::unique_ptr<sim::TaskPool> pool_;
};

/// The log-spaced grid every rate sweep uses: successive multiplication by
/// 10^(1/points_per_decade) from min_v until max_v (with the historical
/// 1e-7 relative slack on the upper bound). Kept as repeated multiplication
/// — not pow(step, i) — so the values are bit-identical to the original
/// serial loop in DesignSpaceExplorer::sweep.
std::vector<double> log_grid(double min_v, double max_v, std::size_t points_per_decade);

}  // namespace iob::core
