#pragma once
/// \file stream_sink.hpp
/// Streaming building blocks for population-scale fleet grids
/// (docs/scaling.md): a bounded spill writer that shards per-point results
/// to disk, and a fixed-memory online quantile accumulator so per-axis
/// marginal summaries no longer hold every sample in a sorted vector.
///
/// Both pieces are deterministic by construction. `StreamSink` writes
/// exactly the bytes it is handed, in the order it is handed them — the
/// caller (Fleet::run_streaming) feeds rows in flat grid-index order, so the
/// concatenation of all shards is byte-identical to the monolithic
/// `fleet_results_csv` of an in-memory run at any thread count.
/// `OnlineQuantile` is a fold: its state is a pure function of the sample
/// *sequence*, which the index-order merge already fixes.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace iob::core {

/// `percentile` over an already-sorted, possibly +inf-bearing sample vector:
/// linear interpolation at rank q*(n-1), never interpolating *through* +inf
/// (a +inf upper neighbour wins outright, so no NaN). Single source of truth
/// for the interpolation rule — `core::percentile` and the exact mode of
/// `OnlineQuantile` both call it, which is what makes the small-sample mode
/// bit-identical to the sorted-vector path.
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q);

/// One-pass quantile accumulator over non-negative samples (the DDSketch /
/// t-digest family: fixed memory, mergeless fold).
///
/// Two regimes:
///  * **Exact** (<= kExactLimit samples): samples are retained and queries
///    run `quantile_sorted` on them — bit-identical to `core::percentile`,
///    so small per-axis cells (every pre-streaming grid in the repo) keep
///    byte-identical summaries.
///  * **Sketch** (beyond kExactLimit): positive finite samples land in
///    log-spaced bins with ratio gamma = (1+e)/(1-e), e = kRelativeError.
///    A bin's representative value 2*gamma/(gamma+1) * gamma^i is within
///    relative error e of anything in the bin, and the interpolated quantile
///    is a convex combination of two rank values, so:
///
///      |quantile(q) - exact_quantile(q)| <= kRelativeError * exact_quantile(q)
///
///    for any quantile whose exact value is positive and finite. Zeros and
///    +inf are counted outside the bins (their ranks — and therefore the
///    decision "is this percentile perpetual?" — stay exact; a mostly-
///    perpetual cell reports +inf exactly like the sorted-vector path).
///
/// The epsilon above is the documented bound that tests/stream_test.cpp and
/// the 2,160-point bench grid assert (docs/scaling.md#online-quantiles).
class OnlineQuantile {
 public:
  /// Samples retained before switching to the sketch.
  static constexpr std::size_t kExactLimit = 512;
  /// Relative-error bound of the sketch regime (1 %).
  static constexpr double kRelativeError = 0.01;
  /// Positive samples below this count as zero (log-bin indices stay sane).
  static constexpr double kZeroThreshold = 1e-300;

  /// Fold one sample. Requires x >= 0 (or +inf); NaN is rejected.
  void add(double x);

  /// Samples folded so far.
  [[nodiscard]] std::size_t count() const { return count_; }

  /// True once the accumulator has left the exact regime — queries are now
  /// estimates within kRelativeError (summary tables mark them "~").
  [[nodiscard]] bool approximate() const { return sketch_; }

  /// Quantile estimate, q in [0, 1]. Requires count() > 0. Exact regime:
  /// bit-identical to `core::percentile`. Sketch regime: within the
  /// documented relative-error bound (exact for the zero / +inf bands).
  [[nodiscard]] double quantile(double q) const;

 private:
  void sketch_add(double x);
  /// Value at integer rank r (0-based, ascending) in the sketch regime.
  [[nodiscard]] double sketch_rank_value(std::uint64_t r) const;

  std::size_t count_ = 0;
  bool sketch_ = false;

  // Exact regime: raw samples, sorted lazily at query time.
  mutable std::vector<double> exact_;
  mutable bool exact_sorted_ = false;

  // Sketch regime: zero band + log-spaced positive bins + +inf band.
  std::map<int, std::uint64_t> bins_;  ///< bin index -> sample count
  std::uint64_t zero_count_ = 0;
  std::uint64_t pos_count_ = 0;
  std::uint64_t inf_count_ = 0;
  double min_pos_ = 0.0;  ///< smallest positive finite sample (clamp floor)
  double max_pos_ = 0.0;  ///< largest positive finite sample (clamp ceiling)
};

/// On-disk layout of a spill stream.
enum class StreamFormat {
  kCsv,     ///< text rows; concat(shards) == the canonical monolithic CSV
  kBinary,  ///< fixed-width records (e.g. `FleetStreamRecord`), no header
};

struct StreamSinkConfig {
  /// Shard directory; created (recursively) if missing.
  std::string directory;
  /// Shards are `<basename>-NNNNN.csv|.bin` inside `directory`.
  std::string basename = "shard";
  /// Rows per shard before rotating to the next file. The bound on any
  /// single file's size — peak *memory* is bounded by the stdio buffer.
  std::size_t rows_per_shard = 65536;
  StreamFormat format = StreamFormat::kCsv;
};

/// Bounded spill writer: append-only rows sharded across files, rotated
/// every `rows_per_shard` rows. An optional header (the CSV column row) is
/// written to shard 0 only, so concatenating the shards in name order
/// reproduces the monolithic file byte for byte.
class StreamSink {
 public:
  explicit StreamSink(StreamSinkConfig cfg);
  ~StreamSink();
  StreamSink(const StreamSink&) = delete;
  StreamSink& operator=(const StreamSink&) = delete;

  /// Write the header line (must end in '\n') into shard 0. CSV format
  /// only; must precede the first `append`.
  void write_header(const std::string& header);

  /// Append one row/record verbatim. Rotates shards as configured.
  void append(const void* data, std::size_t bytes);

  /// Convenience for text rows (the string must end in '\n').
  void append_row(const std::string& row) { append(row.data(), row.size()); }

  /// Flush and close the current shard. Idempotent; the destructor calls it.
  void finish();

  [[nodiscard]] std::uint64_t rows() const { return rows_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] std::size_t shards() const { return shard_paths_.size(); }
  [[nodiscard]] const std::vector<std::string>& shard_paths() const { return shard_paths_; }
  [[nodiscard]] const StreamSinkConfig& config() const { return cfg_; }

 private:
  void open_next_shard();

  StreamSinkConfig cfg_;
  std::FILE* file_ = nullptr;
  std::uint64_t rows_ = 0;            ///< rows appended across all shards
  std::uint64_t bytes_ = 0;           ///< payload bytes (header included)
  std::size_t rows_in_shard_ = 0;
  bool header_written_ = false;
  std::vector<std::string> shard_paths_;
};

}  // namespace iob::core
