#include "core/explorer.hpp"

#include <cmath>
#include <limits>

#include "common/expect.hpp"
#include "common/units.hpp"
#include "partition/partitioner.hpp"

namespace iob::core {

DesignSpaceExplorer::DesignSpaceExplorer(energy::Battery battery,
                                         energy::SensingPowerModel sensing,
                                         double comm_energy_per_bit_j, double idle_floor_w)
    : battery_(std::move(battery)),
      sensing_(std::move(sensing)),
      e_bit_j_(comm_energy_per_bit_j),
      idle_floor_w_(idle_floor_w) {
  IOB_EXPECTS(e_bit_j_ > 0, "comm energy per bit must be positive");
  IOB_EXPECTS(idle_floor_w_ >= 0, "idle floor must be non-negative");
}

Fig3Point DesignSpaceExplorer::point(double rate_bps) const {
  IOB_EXPECTS(rate_bps > 0, "rate must be positive");
  Fig3Point p;
  p.rate_bps = rate_bps;
  p.sense_power_w = sensing_.power_w(rate_bps);
  p.comm_power_w = e_bit_j_ * rate_bps;
  p.total_power_w = p.sense_power_w + p.comm_power_w + idle_floor_w_;
  const double life_s = energy::battery_life_s(battery_, p.total_power_w);
  p.life_days = life_s / units::day;
  p.life_class = energy::classify(life_s);
  return p;
}

std::vector<Fig3Point> DesignSpaceExplorer::sweep(double min_rate_bps, double max_rate_bps,
                                                  std::size_t points_per_decade) const {
  const std::vector<double> rates = log_grid(min_rate_bps, max_rate_bps, points_per_decade);
  std::vector<Fig3Point> out;
  out.reserve(rates.size());
  for (const double r : rates) out.push_back(point(r));
  return out;
}

std::vector<Fig3Point> DesignSpaceExplorer::sweep(const SweepRunner& runner, double min_rate_bps,
                                                  double max_rate_bps,
                                                  std::size_t points_per_decade) const {
  const std::vector<double> rates = log_grid(min_rate_bps, max_rate_bps, points_per_decade);
  return runner.map<Fig3Point>(rates.size(),
                               [&](std::size_t i) { return point(rates[i]); });
}

double DesignSpaceExplorer::perpetual_boundary_bps(double min_rate_bps,
                                                   double max_rate_bps) const {
  const auto perpetual_at = [this](double r) {
    return energy::is_perpetual(point(r).life_days * units::day);
  };
  if (!perpetual_at(min_rate_bps)) return 0.0;
  if (perpetual_at(max_rate_bps)) return std::numeric_limits<double>::infinity();
  double lo = min_rate_bps, hi = max_rate_bps;
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(lo * hi);
    if (perpetual_at(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double DesignSpaceExplorer::required_harvest_w(double rate_bps) const {
  return point(rate_bps).total_power_w;
}

double offload_crossover_energy_per_bit_j(const nn::Model& model, partition::CostModel base,
                                          double lo_j, double hi_j) {
  // Single implementation: the runner grid-refine path on a 1-thread pool
  // (bit-exact identical at every thread count, including this one). The
  // historical serial bisection converged to the same bracket; keeping one
  // refinement algorithm means every call site shares it.
  const SweepRunner serial(1);
  return offload_crossover_energy_per_bit_j(model, base, serial, lo_j, hi_j);
}

double offload_crossover_energy_per_bit_j(const nn::Model& model, partition::CostModel base,
                                          const SweepRunner& runner, double lo_j, double hi_j) {
  IOB_EXPECTS(lo_j > 0 && hi_j > lo_j, "invalid bisection range");
  const auto offload_wins = [&](double e_bit) {
    partition::CostModel cm = base;
    cm.leaf_hub.sender_energy_per_bit_j = e_bit;
    const partition::Partitioner part(model, cm);
    return part.full_offload().leaf_energy_j() < part.all_on_leaf().leaf_energy_j();
  };
  if (!offload_wins(lo_j)) return 0.0;  // offload never wins
  if (offload_wins(hi_j)) return hi_j;  // offload always wins in range
  // Batched log-grid refinement: each round evaluates kBatch interior
  // candidates across the pool, then narrows the bracket (in index order) to
  // the first losing candidate. The candidate grid and the scan depend only
  // on the bracket, never on thread scheduling, so every thread count —
  // including 1 — produces the bit-exact same answer. Each round shrinks the
  // log-bracket by (kBatch + 1)x; ~14 rounds resolve a 7-decade range to
  // double precision, about the same total work as the 200-step bisection.
  constexpr std::size_t kBatch = 16;
  double lo = lo_j, hi = hi_j;
  for (int round = 0; round < 64 && hi - lo > lo * 4e-16; ++round) {
    const double log_lo = std::log(lo);
    const double ratio_step = (std::log(hi) - log_lo) / static_cast<double>(kBatch + 1);
    std::vector<double> candidates(kBatch);
    for (std::size_t k = 0; k < kBatch; ++k) {
      candidates[k] = std::exp(log_lo + ratio_step * static_cast<double>(k + 1));
    }
    const std::vector<int> wins = runner.map<int>(
        kBatch, [&](std::size_t k) { return offload_wins(candidates[k]) ? 1 : 0; });
    double new_lo = lo, new_hi = hi;
    for (std::size_t k = 0; k < kBatch; ++k) {
      if (wins[k] != 0) {
        new_lo = candidates[k];
      } else {
        new_hi = candidates[k];
        break;
      }
    }
    if (new_lo <= lo && new_hi >= hi) break;  // grid collapsed onto the bracket
    lo = new_lo;
    hi = new_hi;
  }
  return lo;
}

std::vector<HubBatchPoint> hub_batching_curve(std::uint64_t macs_per_inference,
                                              std::uint64_t weight_bytes,
                                              double energy_per_mac_j,
                                              double energy_per_weight_byte_j,
                                              const std::vector<unsigned>& batch_sizes) {
  IOB_EXPECTS(energy_per_mac_j >= 0 && energy_per_weight_byte_j >= 0,
              "energy coefficients must be non-negative");
  const double per_sample_j = static_cast<double>(macs_per_inference) * energy_per_mac_j;
  const double weight_j = static_cast<double>(weight_bytes) * energy_per_weight_byte_j;
  std::vector<HubBatchPoint> curve;
  curve.reserve(batch_sizes.size());
  for (const unsigned batch : batch_sizes) {
    IOB_EXPECTS(batch >= 1, "batch sizes must be >= 1");
    HubBatchPoint p;
    p.batch = batch;
    p.weight_share_j = weight_j / static_cast<double>(batch);
    p.energy_per_inference_j = per_sample_j + p.weight_share_j;
    curve.push_back(p);
  }
  return curve;
}

}  // namespace iob::core
