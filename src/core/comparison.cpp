#include "core/comparison.hpp"

#include "common/units.hpp"

namespace iob::core {

ArchitectureComparison::ArchitectureComparison(const PlatformPowerModel& model,
                                               energy::Battery battery)
    : model_(model), battery_(std::move(battery)) {}

ComparisonRow ArchitectureComparison::compare(const WorkloadSpec& workload) const {
  ComparisonRow row;
  row.workload = workload.name;
  row.conventional = model_.evaluate(NodeArchitecture::kConventional, workload);
  row.human_inspired = model_.evaluate(NodeArchitecture::kHumanInspired, workload);
  row.reduction_factor = row.conventional.node_total_w() / row.human_inspired.node_total_w();

  const double conv_life = energy::battery_life_s(battery_, row.conventional.node_total_w());
  const double hi_life = energy::battery_life_s(battery_, row.human_inspired.node_total_w());
  row.conventional_life_days = conv_life / units::day;
  row.human_inspired_life_days = hi_life / units::day;
  row.conventional_class = energy::classify(conv_life);
  row.human_inspired_class = energy::classify(hi_life);
  return row;
}

std::vector<ComparisonRow> ArchitectureComparison::compare_suite(
    const std::vector<WorkloadSpec>& workloads) const {
  std::vector<ComparisonRow> rows;
  rows.reserve(workloads.size());
  for (const auto& w : workloads) rows.push_back(compare(w));
  return rows;
}

std::vector<ComparisonRow> ArchitectureComparison::compare_reference_suite() const {
  return compare_suite({ecg_patch_workload(), audio_pendant_workload(), camera_node_workload()});
}

}  // namespace iob::core
