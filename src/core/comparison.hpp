#pragma once
/// \file comparison.hpp
/// Architecture comparison engine: evaluates a suite of workloads under
/// both architectures and produces the Fig.-1 rows (per-component powers,
/// reduction factor) plus battery-life projections for each.

#include <string>
#include <vector>

#include "core/platform_power.hpp"
#include "energy/battery.hpp"
#include "energy/lifetime.hpp"

namespace iob::core {

struct ComparisonRow {
  std::string workload;
  PowerBreakdown conventional;
  PowerBreakdown human_inspired;
  double reduction_factor = 0.0;
  double conventional_life_days = 0.0;
  double human_inspired_life_days = 0.0;
  energy::LifeClass conventional_class{};
  energy::LifeClass human_inspired_class{};
};

class ArchitectureComparison {
 public:
  ArchitectureComparison(const PlatformPowerModel& model, energy::Battery battery);

  [[nodiscard]] ComparisonRow compare(const WorkloadSpec& workload) const;
  [[nodiscard]] std::vector<ComparisonRow> compare_suite(
      const std::vector<WorkloadSpec>& workloads) const;

  /// The paper-motivated three-workload suite (Sec. II classes).
  [[nodiscard]] std::vector<ComparisonRow> compare_reference_suite() const;

 private:
  const PlatformPowerModel& model_;
  energy::Battery battery_;
};

}  // namespace iob::core
