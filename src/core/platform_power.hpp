#pragma once
/// \file platform_power.hpp
/// Platform power model: computes the Fig.-1-style per-component power
/// breakdown of a wearable node under either architecture.
///
/// Conventional: the node senses at the raw rate, runs the full AI model on
/// its own CPU (paying MCU-class energy/MAC plus CPU static power), and
/// duty-cycles a BLE-class radio to report results + keep-alives.
/// Human-inspired: the node senses with a ULP co-designed front-end, runs
/// only the light ISA stage, and streams the reduced-rate data over Wi-R to
/// the hub, which executes the model at better silicon efficiency.

#include "comm/link.hpp"
#include "core/architecture.hpp"
#include "energy/sensing_power.hpp"

namespace iob::core {

struct PowerBreakdown {
  double sense_w = 0.0;
  double compute_w = 0.0;  ///< CPU (conventional) or ISA (human-inspired)
  double comm_w = 0.0;
  /// Hub-side cost induced by this node (inference + bus RX); zero for the
  /// conventional node, which computes locally.
  double hub_induced_w = 0.0;

  [[nodiscard]] double node_total_w() const { return sense_w + compute_w + comm_w; }
  [[nodiscard]] double system_total_w() const { return node_total_w() + hub_induced_w; }
};

class PlatformPowerModel {
 public:
  /// \param radio_link link used by the conventional architecture (BLE class)
  /// \param body_link link used by the human-inspired architecture (Wi-R)
  PlatformPowerModel(const comm::Link& radio_link, const comm::Link& body_link,
                     energy::SensingPowerModel sensing = {}, SiliconConstants silicon = {});

  [[nodiscard]] PowerBreakdown evaluate(NodeArchitecture arch, const WorkloadSpec& workload) const;

  /// Node-power reduction factor conventional/human-inspired for a workload.
  [[nodiscard]] double reduction_factor(const WorkloadSpec& workload) const;

  [[nodiscard]] const SiliconConstants& silicon() const { return silicon_; }
  [[nodiscard]] const energy::SensingPowerModel& sensing() const { return sensing_; }

 private:
  const comm::Link& radio_link_;
  const comm::Link& body_link_;
  energy::SensingPowerModel sensing_;
  SiliconConstants silicon_;
};

}  // namespace iob::core
