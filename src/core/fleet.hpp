#pragma once
/// \file fleet.hpp
/// Declarative fleet harness: grid sweeps of thousands of independent
/// `net::NetworkSim` points.
///
/// The paper's claim is a *system-level* trade — distributing wearable AI
/// across leaf nodes, a Wi-R body bus and a hub brain pays off across wide
/// operating regimes, not at one hand-picked design point. `FleetAxes`
/// declares those regimes as axes (node count x MAC variant x node-mix x
/// harvesting x bus link x seed); `Fleet` expands them into a flat grid of
/// value-type `FleetPoint` specs, fans the points across a `SweepRunner`
/// (each with an `Rng::fork`-derived seed, so the result vector is
/// byte-identical to a serial run at any thread count), and folds the
/// resulting `NetworkReport`s into per-axis marginal summaries: lifetime
/// percentiles, goodput, drop rate, bus utilization.
///
/// Grid order contract (tests assert it): points enumerate the axes as
/// nested loops with `node_counts` outermost and `seeds` innermost —
///   for n in node_counts / for m in macs / for x in mixes /
///   for h in harvests / for b in buses / for w in batch_windows /
///   for p in precisions / for f in faults / for l in splits /
///   for i in sir_levels / for o in motion / for s in seeds
/// and `FleetPoint::seed = SweepRunner::point_seed(s, flat_index)`, so
/// sibling points never share an RNG stream even when the seed axis holds a
/// single value. (The fault, split, SIR and motion axes nest outside seeds
/// but serialize as `coord[kAxisFault]` / `coord[kAxisSplit]` /
/// `coord[kAxisSir]` / `coord[kAxisMotion]` — appended after the seed
/// coordinate; see the FleetAxis comment for the byte-compat reasoning.)
///
/// A `FleetPoint` is self-contained: `run_fleet_point(point)` is a pure
/// function that builds its own link (owned by the `NetworkSim` — no shared
/// `comm::Link` lifetime to manage), its own simulator, runs it, and
/// returns the report. That purity is what makes the fan-out trivially
/// deterministic.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/link.hpp"
#include "comm/tdma.hpp"
#include "core/stream_sink.hpp"
#include "core/sweep_runner.hpp"
#include "energy/harvester.hpp"
#include "net/network_sim.hpp"
#include "net/session.hpp"
#include "nn/precision.hpp"
#include "phy/body_motion.hpp"
#include "phy/interference.hpp"
#include "sim/fault.hpp"

namespace iob::core {

/// Which body-bus link a point instantiates. Each point constructs and owns
/// its link, so grid points never share mutable or lifetime-coupled state.
/// Note the MAC slot must fit the mix's frame size on the chosen link
/// (`TdmaBus` enforces it): the 1 ms default slot fits 240-byte frames on
/// Wi-R's 4 Mb/s PHY but not on BLE/NFMI/ULP-Wi-R rates — pair slower buses
/// with wider slots or smaller frames.
enum class BusKind { kWiR, kWiRUlp, kBle, kNfmi };

[[nodiscard]] std::string to_string(BusKind kind);

/// Factory for the link a `BusKind` names, with that link's default params.
[[nodiscard]] std::unique_ptr<const comm::Link> make_bus_link(BusKind kind);

/// One leaf class inside a population mix. `base.name` is used as a prefix;
/// node i of a fleet point gets the class at position i mod (sum of shares)
/// in the share-expanded class sequence, name `<prefix>-<i>` and stream
/// `<prefix>-<i>` (unless `base.stream` is set to something other than the
/// `NodeConfig` default, which pins all nodes of the class to one shared
/// stream tag). An optional hub session is registered per node stream (its
/// `stream` field is overwritten).
struct NodeClassSpec {
  net::NodeConfig base;
  unsigned share = 1;
  std::optional<net::SessionConfig> session{};
};

/// A labelled leaf population recipe (one value on the mix axis).
struct NodeMix {
  std::string label;
  std::vector<NodeClassSpec> classes;
};

/// A labelled MAC configuration (one value on the MAC axis).
struct MacVariant {
  std::string label;
  comm::TdmaConfig config{};
};

/// A labelled harvesting profile applied to every node of a point;
/// `std::nullopt` leaves each class's own `base.harvester` in force.
struct HarvestVariant {
  std::string label;
  std::optional<energy::HarvesterParams> harvester{};
};

/// One value on the fleet's fault axis: which canonical fault regime
/// (docs/robustness.md) a point simulates under. `kNone` is the clean path
/// and keeps every result bit-identical to pre-fault grids.
enum class FaultVariant { kNone, kBrownout, kHubFlap, kBurstLoss, kCombined };

[[nodiscard]] std::string to_string(FaultVariant variant);

/// The canonical `sim::FaultPlan` behind a `FaultVariant`. `intensity`
/// scales fault *pressure* (>= 1 is harsher): hub crashes arrive
/// `intensity` times as often and burst episodes recur `intensity` times
/// as often; outage/episode durations and the brownout thresholds are
/// intensity-invariant. `kNone` returns an empty plan at any intensity.
[[nodiscard]] sim::FaultPlan make_fault_plan(FaultVariant variant, double intensity = 1.0);

/// One value on the fleet's split-execution axis: how session-bearing node
/// classes split their model between leaf and hub (docs/architecture.md).
/// Only classes whose session carries an executable `net` participate —
/// model-less telemetry classes are untouched. The disabled default keeps
/// every grid byte-identical to pre-split output.
struct SplitVariant {
  std::string label = "off";
  bool enabled = false;
  /// Fixed split: the leaf runs `round(leaf_fraction * layer_count)` layers
  /// (clamped to [0, n]) and ships the boundary activation.
  double leaf_fraction = 0.0;
  /// Adaptive re-partitioning: candidates come from the analytic
  /// `partition::CostModel` (leaf silicon below, the point's bus link, the
  /// class's inference rate) and an `AdaptiveSplitController` walks them
  /// along the battery glide path — deterministic, so grids stay
  /// byte-identical across thread counts.
  bool adaptive = false;
  double mission_time_s = 30.0 * 86400.0;  ///< adaptive glide-path target
  double leaf_energy_per_mac_j = 20e-12;   ///< leaf silicon (CostModel default)
};

/// One value on the fleet's interference axis: the co-channel aggressor
/// regime (`phy::InterferenceField`) every node of a point shares. The
/// default "clean" level (no aggressors) installs nothing and keeps every
/// grid byte-identical to pre-interference output.
struct SirLevelVariant {
  std::string label = "clean";
  phy::SirLevel level{};
};

/// One value on the fleet's body-motion axis: the wearer-motion Markov
/// chain (`phy::BodyMotionProcess`) whose path-gain deltas modulate the
/// bus FER over time. The disabled default installs nothing and keeps
/// every grid byte-identical to motion-free output.
struct MotionVariant {
  std::string label = "off";
  bool enabled = false;
  phy::BodyMotionParams params{};
};

/// The declarative grid. Every axis must be non-empty; `mixes` has no
/// default because a population recipe is the one axis with no sane
/// universal value.
struct FleetAxes {
  std::vector<int> node_counts{4};
  std::vector<MacVariant> macs{{"tdma-default", {}}};
  std::vector<NodeMix> mixes{};
  std::vector<HarvestVariant> harvests{{"none", std::nullopt}};
  std::vector<BusKind> buses{BusKind::kWiR};
  /// Hub batching axis (`HubConfig::batch_window`): 0 = per-frame path,
  /// K >= 1 = one batched flush every K superframes. Lets grids sweep
  /// batched vs unbatched hub inference.
  std::vector<unsigned> batch_windows{0};
  /// Hub inference precision axis: every session of a point executes (and
  /// is priced) at this `nn::Precision` — f32 hubs vs int8 hubs in one
  /// grid. f32 keeps the ledger bit-identical to pre-precision grids.
  std::vector<nn::Precision> precisions{nn::Precision::kF32};
  /// Fault-regime axis (`make_fault_plan`): which robustness stressor each
  /// point runs under. The `{kNone}` default keeps grids byte-identical to
  /// pre-fault runs (the CSV only ever mentions faults for points/nodes
  /// that actually saw fault activity).
  std::vector<FaultVariant> faults{FaultVariant::kNone};
  /// Split-execution axis: leaf/hub model partitioning per point. The
  /// `{off}` default keeps grids byte-identical to pre-split runs (the CSV
  /// only mentions splits for points/nodes that actually ran one).
  std::vector<SplitVariant> splits{{}};
  /// Interference axis (`phy::SirLevel` per point): co-channel aggressor
  /// population shared by every node. The `{clean}` default keeps grids
  /// byte-identical (the CSV only mentions SIR for stressed points).
  std::vector<SirLevelVariant> sir_levels{{}};
  /// Body-motion axis (`phy::BodyMotionParams` per point): the wearer's
  /// activity chain fading the bus. The `{off}` default keeps grids
  /// byte-identical (the CSV only mentions motion for moving points).
  std::vector<MotionVariant> motion{{}};
  std::vector<std::uint64_t> seeds{42};
  double duration_s = 5.0;  ///< simulated seconds per point
  /// Hub engine threads (`HubConfig::engine_threads`) applied to every
  /// point — a scalar passthrough, not an axis: the hub's parallel metered
  /// path is bit-identical to serial by contract, so sweeping it would
  /// only grid out identical results. Inside a parallel `SweepRunner` the
  /// hub degrades to serial regardless (fleet parallelism wins), making
  /// fleet CSVs byte-identical across this setting by construction — the
  /// hub-parallel test asserts exactly that.
  unsigned hub_engine_threads = 1;

  /// Number of grid points (product of axis sizes).
  [[nodiscard]] std::size_t size() const;
};

/// Index of each axis inside `FleetPoint::coord`. `kAxisFault`,
/// `kAxisSplit`, `kAxisSir` and `kAxisMotion` are appended *after*
/// `kAxisSeed` even though the expansion loop nests them outside seeds: the
/// canonical CSV serializes coords 0..kAxisSeed as the fixed prefix it
/// always had, so default grids stay byte-identical to older output (the
/// fault/split/SIR/motion coordinates only appear as `:f<i>` / `:s<i>` /
/// `:i<i>` / `:m<i>` suffixes when non-zero).
enum FleetAxis : std::size_t {
  kAxisNodeCount = 0,
  kAxisMac,
  kAxisMix,
  kAxisHarvest,
  kAxisBus,
  kAxisBatch,
  kAxisPrecision,
  kAxisSeed,
  kAxisFault,
  kAxisSplit,
  kAxisSir,
  kAxisMotion,
  kAxisCount,
};

[[nodiscard]] std::string to_string(FleetAxis axis);

/// One expanded grid point: a plain value type carrying everything needed
/// to build and run a `NetworkSim`, with no references into the axes.
struct FleetPoint {
  std::size_t index = 0;                       ///< flat grid index
  std::array<std::size_t, kAxisCount> coord{}; ///< per-axis value indices
  int node_count = 1;
  MacVariant mac{};
  NodeMix mix{};
  HarvestVariant harvest{};
  BusKind bus = BusKind::kWiR;
  unsigned batch_window = 0;  ///< HubConfig::batch_window for this point
  unsigned hub_engine_threads = 1;  ///< HubConfig::engine_threads (scalar, not an axis)
  nn::Precision precision = nn::Precision::kF32;  ///< session execution precision
  FaultVariant fault = FaultVariant::kNone;  ///< fault regime (make_fault_plan)
  SplitVariant split{};     ///< leaf/hub split-execution recipe
  SirLevelVariant sir{};    ///< co-channel interference regime
  MotionVariant motion{};   ///< wearer body-motion chain
  std::uint64_t seed = 0;   ///< SweepRunner::point_seed(seed_axis_value, index)
  double duration_s = 5.0;
};

/// The leaf configuration point `p` assigns to node `i` (class selection by
/// share-weighted round robin, harvest override, name/stream suffixing).
[[nodiscard]] net::NodeConfig fleet_node_config(const FleetPoint& p, int i);

/// Build (but do not run) the simulation a point describes. The returned
/// `NetworkSim` owns its link.
[[nodiscard]] std::unique_ptr<net::NetworkSim> build_fleet_point(const FleetPoint& p);

/// Per-point outcome: the full report plus the derived scalars the
/// aggregation consumes.
struct FleetPointResult {
  std::size_t index = 0;
  std::array<std::size_t, kAxisCount> coord{};
  net::NetworkReport report{};
  double drop_rate = 0.0;          ///< dropped / (delivered + dropped), 0 if idle
  double mean_latency_s = 0.0;     ///< mean over nodes of per-node mean latency
  double mean_leaf_power_w = 0.0;
  double min_life_days = 0.0;      ///< weakest node (+inf only if no node ever drains)
  double perpetual_fraction = 0.0; ///< fraction of nodes with life > 1 y (energy::is_perpetual)
  double mean_availability = 1.0;  ///< mean over nodes of powered fraction (1 clean)
};

/// Run one grid point start to finish. Pure: depends only on `p`.
[[nodiscard]] FleetPointResult run_fleet_point(const FleetPoint& p);

/// Header row of the canonical CSV (with trailing newline).
[[nodiscard]] std::string fleet_csv_header();

/// Canonical CSV row for one result (with trailing newline, doubles as
/// round-trip-exact %.17g). `fleet_results_csv` and the streaming spill path
/// both serialize through this function, which is what makes
/// concat(shards) == monolithic CSV a byte-level identity.
[[nodiscard]] std::string fleet_result_row(const FleetPointResult& r);

/// Canonical serialization of a result vector (header + one CSV row per
/// point, doubles as round-trip-exact %.17g). Two runs are byte-identical
/// iff these strings are equal — the form the determinism tests compare.
[[nodiscard]] std::string fleet_results_csv(const std::vector<FleetPointResult>& results);

/// Fixed-width binary spill record: the headline per-point scalars, raw
/// little-endian doubles (the host layout — shards are a local cache, not an
/// interchange format). 80 bytes/point vs ~0.5 KiB of CSV.
struct FleetStreamRecord {
  std::uint64_t index = 0;
  double drop_rate = 0.0;
  double mean_latency_s = 0.0;
  double mean_leaf_power_w = 0.0;
  double min_life_days = 0.0;
  double perpetual_fraction = 0.0;
  double hub_power_w = 0.0;
  double goodput_bps = 0.0;
  double bus_utilization = 0.0;
  double elapsed_s = 0.0;
};
static_assert(sizeof(FleetStreamRecord) == 80, "spill record layout drifted");

[[nodiscard]] FleetStreamRecord fleet_stream_record(const FleetPointResult& r);

/// Marginal aggregate over one set of points (one axis value, or the whole
/// grid). Lifetime percentiles are taken over every node-lifetime sample in
/// the set (+inf samples sort last, so a mostly-perpetual cell reports +inf
/// percentiles); the remaining metrics are unweighted means over points.
struct AxisCell {
  std::string label;
  std::size_t points = 0;
  double life_p10_days = 0.0;
  double life_p50_days = 0.0;
  double life_p90_days = 0.0;
  /// True when the lifetime percentiles come from the online sketch instead
  /// of the exact retained-sample regime (cells beyond
  /// `OnlineQuantile::kExactLimit` samples) — within `kRelativeError`, and
  /// rendered with a "~" marker by `FleetSummary::to_string`.
  bool life_approx = false;
  double perpetual_fraction = 0.0;
  double mean_goodput_bps = 0.0;
  double mean_drop_rate = 0.0;
  double mean_latency_s = 0.0;
  double mean_bus_utilization = 0.0;
  /// Mean leaf availability over the cell's points (1.0 without faults).
  double mean_availability = 1.0;
};

/// Aggregated view of a fleet run: one overall cell plus, per axis, one
/// cell per axis value (marginalized over every other axis).
struct FleetSummary {
  std::size_t total_points = 0;
  AxisCell overall{};
  /// (axis name, cells in axis-value order).
  std::vector<std::pair<std::string, std::vector<AxisCell>>> axes;

  /// Console rendering (one table per axis with >= 2 values).
  [[nodiscard]] std::string to_string() const;
};

/// Linear-interpolation percentile (q in [0,1]) over unsorted samples.
/// Deterministic; +inf-aware (never produces NaN from inf interpolation).
/// Exposed for the hand-computed-aggregate tests.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// How `Fleet::run_streaming` batches and spills (docs/scaling.md).
struct FleetStreamConfig {
  /// Points per grid batch. Peak memory is O(2 * batch_points) results —
  /// one batch executing, one being folded — independent of grid size.
  std::size_t batch_points = 4096;
  /// Where per-point rows spill to disk; nullopt folds summaries only.
  std::optional<StreamSinkConfig> spill{};
};

/// Outcome of a streaming run: the folded summary plus spill accounting.
struct FleetStreamResult {
  FleetSummary summary{};
  std::size_t points = 0;          ///< grid points executed
  std::uint64_t spilled_rows = 0;  ///< rows written across shards (0 if no spill)
  std::uint64_t spilled_bytes = 0;
  std::size_t spill_shards = 0;
};

class Fleet {
 public:
  explicit Fleet(FleetAxes axes);

  [[nodiscard]] const FleetAxes& axes() const { return axes_; }
  [[nodiscard]] std::size_t size() const { return axes_.size(); }

  /// The grid point at flat index `i` — a lazy mixed-radix decode of the
  /// order contract (seeds vary fastest, node_counts slowest), identical to
  /// `expand()[i]` without materializing the grid. The reason a million-point
  /// grid costs O(batch) memory, not O(grid).
  [[nodiscard]] FleetPoint point_at(std::size_t index) const;

  /// Expand the axes into the flat, ordered grid (see the order contract in
  /// the file comment). Materializes every point — fine for thousands of
  /// points; streaming runs use `point_at` instead.
  [[nodiscard]] std::vector<FleetPoint> expand() const;

  /// Run every point across `runner`. Deterministic: the result vector is
  /// byte-identical at every thread count.
  [[nodiscard]] std::vector<FleetPointResult> run(const SweepRunner& runner) const;

  /// Run the grid in bounded memory: points execute in `cfg.batch_points`
  /// batches (each fanned across `runner` via `map_async`), per-point rows
  /// spill to disk shards in flat-index order, and per-axis summaries fold
  /// online while the *next* batch executes. Determinism contract: the
  /// spilled shards concatenate to exactly `fleet_results_csv(run(runner))`
  /// and the summary equals `summarize(run(runner))` at any thread count
  /// (docs/scaling.md#how-determinism-survives-streaming).
  [[nodiscard]] FleetStreamResult run_streaming(const SweepRunner& runner,
                                               const FleetStreamConfig& cfg = {}) const;

  /// Fold per-point results into per-axis marginal summaries. Lifetime
  /// percentiles fold through `OnlineQuantile`: exact (bit-identical to the
  /// historical sorted-vector path) up to 512 samples per cell, within its
  /// documented 1% relative-error bound beyond (`AxisCell::life_approx`).
  [[nodiscard]] FleetSummary summarize(const std::vector<FleetPointResult>& results) const;

 private:
  FleetAxes axes_;
};

}  // namespace iob::core
