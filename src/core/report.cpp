#include "core/report.hpp"

#include <cmath>

#include "common/table.hpp"

namespace iob::core {

using common::fixed;
using common::si_format;
using common::Table;

std::string render_comparison(const std::vector<ComparisonRow>& rows) {
  Table t({"workload", "architecture", "sense", "compute", "comm", "node total", "battery life",
           "class"});
  for (const auto& r : rows) {
    t.add_row({r.workload, "conventional", si_format(r.conventional.sense_w, "W"),
               si_format(r.conventional.compute_w, "W"), si_format(r.conventional.comm_w, "W"),
               si_format(r.conventional.node_total_w(), "W"),
               fixed(r.conventional_life_days, 1) + " d",
               energy::to_string(r.conventional_class)});
    t.add_row({"", "human-inspired", si_format(r.human_inspired.sense_w, "W"),
               si_format(r.human_inspired.compute_w, "W"), si_format(r.human_inspired.comm_w, "W"),
               si_format(r.human_inspired.node_total_w(), "W"),
               fixed(r.human_inspired_life_days, 1) + " d",
               energy::to_string(r.human_inspired_class)});
    t.add_row({"", "reduction", "", "", "", fixed(r.reduction_factor, 1) + "x", "", ""});
    t.add_rule();
  }
  return t.to_string();
}

std::string render_network_report(const net::NetworkReport& report) {
  Table t({"node", "avg power", "comm", "life", "perpetual?", "frames", "drops", "mean lat",
           "max lat"});
  for (const auto& n : report.nodes) {
    const std::string life = std::isinf(n.projected_life_days)
                                 ? "inf (harvest-covered)"
                                 : fixed(n.projected_life_days, 1) + " d";
    t.add_row({n.name, si_format(n.average_power_w, "W"), si_format(n.comm_power_w, "W"), life,
               n.perpetual ? "yes" : "no", std::to_string(n.frames_delivered),
               std::to_string(n.frames_dropped), si_format(n.mean_latency_s, "s"),
               si_format(n.p99ish_latency_s, "s")});
  }
  std::string out = t.to_string();
  out += "  hub power: " + si_format(report.hub_power_w, "W") +
         " | goodput: " + si_format(report.aggregate_goodput_bps, "b/s") +
         " | bus utilization: " + fixed(report.bus_utilization * 100.0, 1) + "%\n";
  return out;
}

std::string render_fig3(const std::vector<Fig3Point>& points) {
  Table t({"data rate", "sense power", "Wi-R power", "total power", "battery life", "class"});
  for (const auto& p : points) {
    t.add_row({si_format(p.rate_bps, "b/s"), si_format(p.sense_power_w, "W"),
               si_format(p.comm_power_w, "W"), si_format(p.total_power_w, "W"),
               fixed(p.life_days, 1) + " d", energy::to_string(p.life_class)});
  }
  return t.to_string();
}

}  // namespace iob::core
