#include "core/stream_sink.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <utility>

#include "common/expect.hpp"

namespace iob::core {

namespace {

// Sketch geometry, derived once from the documented epsilon. gamma is the
// bin ratio; kBinMid * gamma^i is the mid-bin representative whose relative
// error against anything in [gamma^i, gamma^{i+1}) is at most
// (gamma - 1) / (gamma + 1) == kRelativeError.
constexpr double kGamma =
    (1.0 + OnlineQuantile::kRelativeError) / (1.0 - OnlineQuantile::kRelativeError);
const double kLnGamma = std::log(kGamma);
const double kInvLnGamma = 1.0 / kLnGamma;
const double kBinMid = 2.0 * kGamma / (kGamma + 1.0);

}  // namespace

double quantile_sorted(const std::vector<double>& sorted, double q) {
  IOB_EXPECTS(!sorted.empty(), "percentile of an empty sample set");
  IOB_EXPECTS(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = pos - static_cast<double>(lo);
  if (lo == hi || t == 0.0) return sorted[lo];
  // inf-aware: interpolating toward +inf is +inf, never NaN.
  if (std::isinf(sorted[hi])) return sorted[hi];
  return sorted[lo] + (sorted[hi] - sorted[lo]) * t;
}

// ---- OnlineQuantile ---------------------------------------------------------

void OnlineQuantile::add(double x) {
  IOB_EXPECTS(!std::isnan(x) && x >= 0.0, "OnlineQuantile samples must be non-negative");
  ++count_;
  if (!sketch_) {
    if (exact_.size() < kExactLimit) {
      exact_.push_back(x);
      exact_sorted_ = false;
      return;
    }
    // Sample kExactLimit + 1 arrives: fold the retained set into the sketch
    // and stop keeping samples. Memory is fixed from here on.
    sketch_ = true;
    for (const double v : exact_) sketch_add(v);
    exact_.clear();
    exact_.shrink_to_fit();
  }
  sketch_add(x);
}

void OnlineQuantile::sketch_add(double x) {
  if (std::isinf(x)) {
    ++inf_count_;
    return;
  }
  if (x < kZeroThreshold) {
    ++zero_count_;
    return;
  }
  if (pos_count_ == 0) {
    min_pos_ = x;
    max_pos_ = x;
  } else {
    min_pos_ = std::min(min_pos_, x);
    max_pos_ = std::max(max_pos_, x);
  }
  ++pos_count_;
  ++bins_[static_cast<int>(std::floor(std::log(x) * kInvLnGamma))];
}

double OnlineQuantile::sketch_rank_value(std::uint64_t r) const {
  // Ascending rank order: the zero band, then the log-binned positives,
  // then the +inf band — the same order a sorted sample vector would have.
  if (r < zero_count_) return 0.0;
  if (r >= zero_count_ + pos_count_) return std::numeric_limits<double>::infinity();
  const std::uint64_t rank = r - zero_count_;
  std::uint64_t cum = 0;
  for (const auto& [idx, cnt] : bins_) {
    cum += cnt;
    if (rank < cum) {
      const double est = kBinMid * std::exp(kLnGamma * static_cast<double>(idx));
      // Clamping to the observed range only ever moves the estimate toward
      // the exact rank value, so the error bound survives it.
      return std::clamp(est, min_pos_, max_pos_);
    }
  }
  return max_pos_;  // unreachable when the band counts are consistent
}

double OnlineQuantile::quantile(double q) const {
  IOB_EXPECTS(count_ > 0, "quantile of an empty accumulator");
  IOB_EXPECTS(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  if (!sketch_) {
    if (!exact_sorted_) {
      std::sort(exact_.begin(), exact_.end());
      exact_sorted_ = true;
    }
    return quantile_sorted(exact_, q);
  }
  // Same rank arithmetic and +inf rule as quantile_sorted, over estimated
  // rank values: the interpolated result is a convex combination of two
  // values each within kRelativeError of its exact counterpart.
  const std::uint64_t n = zero_count_ + pos_count_ + inf_count_;
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::uint64_t>(pos);
  const std::uint64_t hi = std::min(lo + 1, n - 1);
  const double t = pos - static_cast<double>(lo);
  const double v_lo = sketch_rank_value(lo);
  if (lo == hi || t == 0.0) return v_lo;
  const double v_hi = sketch_rank_value(hi);
  if (std::isinf(v_hi)) return v_hi;
  return v_lo + (v_hi - v_lo) * t;
}

// ---- StreamSink -------------------------------------------------------------

StreamSink::StreamSink(StreamSinkConfig cfg) : cfg_(std::move(cfg)) {
  IOB_EXPECTS(!cfg_.directory.empty(), "StreamSink needs a directory");
  IOB_EXPECTS(!cfg_.basename.empty(), "StreamSink needs a shard basename");
  IOB_EXPECTS(cfg_.rows_per_shard > 0, "rows_per_shard must be positive");
  std::filesystem::create_directories(cfg_.directory);
  open_next_shard();
}

StreamSink::~StreamSink() { finish(); }

void StreamSink::open_next_shard() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "-%05zu.%s", shard_paths_.size(),
                cfg_.format == StreamFormat::kCsv ? "csv" : "bin");
  std::string path =
      (std::filesystem::path(cfg_.directory) / (cfg_.basename + suffix)).string();
  file_ = std::fopen(path.c_str(), "wb");
  IOB_ENSURES(file_ != nullptr, "StreamSink could not open shard file");
  shard_paths_.push_back(std::move(path));
  rows_in_shard_ = 0;
}

void StreamSink::write_header(const std::string& header) {
  IOB_EXPECTS(cfg_.format == StreamFormat::kCsv, "headers only apply to CSV streams");
  IOB_EXPECTS(rows_ == 0 && !header_written_, "header must precede the first row");
  IOB_EXPECTS(file_ != nullptr, "write_header after finish()");
  const std::size_t n = std::fwrite(header.data(), 1, header.size(), file_);
  IOB_ENSURES(n == header.size(), "StreamSink short write");
  bytes_ += n;
  header_written_ = true;
}

void StreamSink::append(const void* data, std::size_t bytes) {
  IOB_EXPECTS(file_ != nullptr, "append after finish()");
  // Rotate lazily, before the write: an exact multiple of rows_per_shard
  // never leaves a trailing empty shard behind.
  if (rows_in_shard_ == cfg_.rows_per_shard) open_next_shard();
  const std::size_t n = std::fwrite(data, 1, bytes, file_);
  IOB_ENSURES(n == bytes, "StreamSink short write");
  bytes_ += n;
  ++rows_;
  ++rows_in_shard_;
}

void StreamSink::finish() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace iob::core
