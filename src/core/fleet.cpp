#include "core/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "comm/ble_link.hpp"
#include "comm/nfmi_link.hpp"
#include "comm/wir_link.hpp"
#include "common/expect.hpp"
#include "common/table.hpp"
#include "nn/model.hpp"
#include "nn/quantize.hpp"
#include "partition/adaptive_split.hpp"
#include "partition/partitioner.hpp"

namespace iob::core {

namespace {

/// Round-trip-exact double formatting for the canonical CSV.
std::string exact(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Human formatting for a possibly-infinite lifetime (days).
std::string life_str(double days) {
  if (std::isinf(days)) return "perpetual";
  return common::fixed(days, 1) + " d";
}

}  // namespace

std::string to_string(BusKind kind) {
  switch (kind) {
    case BusKind::kWiR: return "wir";
    case BusKind::kWiRUlp: return "wir-ulp";
    case BusKind::kBle: return "ble";
    case BusKind::kNfmi: return "nfmi";
  }
  return "unknown";
}

std::string to_string(FleetAxis axis) {
  switch (axis) {
    case kAxisNodeCount: return "node count";
    case kAxisMac: return "mac";
    case kAxisMix: return "node mix";
    case kAxisHarvest: return "harvesting";
    case kAxisBus: return "bus";
    case kAxisBatch: return "batch window";
    case kAxisPrecision: return "precision";
    case kAxisSeed: return "seed";
    case kAxisFault: return "faults";
    case kAxisSplit: return "split";
    case kAxisSir: return "interference";
    case kAxisMotion: return "motion";
    default: return "unknown";
  }
}

std::string to_string(FaultVariant variant) {
  switch (variant) {
    case FaultVariant::kNone: return "none";
    case FaultVariant::kBrownout: return "brownout";
    case FaultVariant::kHubFlap: return "hub-flap";
    case FaultVariant::kBurstLoss: return "burst-loss";
    case FaultVariant::kCombined: return "combined";
  }
  return "unknown";
}

sim::FaultPlan make_fault_plan(FaultVariant variant, double intensity) {
  IOB_EXPECTS(intensity > 0.0, "fault intensity must be positive");
  sim::FaultPlan plan;
  // Canonical regimes (docs/robustness.md). Intensity raises how *often*
  // faults strike — crash inter-arrivals and good-channel dwells shrink —
  // while episode durations and brownout thresholds stay put, so higher
  // intensity monotonically degrades availability.
  const sim::BrownoutPlan brownout{/*off_soc=*/0.05, /*on_soc=*/0.15,
                                   /*reboot_energy_j=*/1e-3, /*sleep_power_w=*/1e-6};
  const sim::HubFlapPlan hub_flap{/*mean_up_s=*/2.0 / intensity, /*mean_down_s=*/0.5,
                                  /*periodic=*/false};
  const sim::BurstLossPlan burst_loss{/*mean_good_s=*/0.5 / intensity,
                                      /*mean_bad_s=*/0.125, /*bad_loss=*/0.5};
  switch (variant) {
    case FaultVariant::kNone:
      break;
    case FaultVariant::kBrownout:
      plan.brownout = brownout;
      break;
    case FaultVariant::kHubFlap:
      plan.hub_flap = hub_flap;
      break;
    case FaultVariant::kBurstLoss:
      plan.burst_loss = burst_loss;
      break;
    case FaultVariant::kCombined:
      plan.brownout = brownout;
      plan.hub_flap = hub_flap;
      plan.burst_loss = burst_loss;
      break;
  }
  return plan;
}

std::unique_ptr<const comm::Link> make_bus_link(BusKind kind) {
  switch (kind) {
    case BusKind::kWiR: return std::make_unique<comm::WiRLink>();
    case BusKind::kWiRUlp:
      return std::make_unique<comm::WiRLink>(comm::WiRLink::ulp_profile());
    case BusKind::kBle: return std::make_unique<comm::BleLink>();
    case BusKind::kNfmi: return std::make_unique<comm::NfmiLink>();
  }
  IOB_EXPECTS(false, "unknown BusKind");
  return nullptr;
}

std::size_t FleetAxes::size() const {
  return node_counts.size() * macs.size() * mixes.size() * harvests.size() *
         buses.size() * batch_windows.size() * precisions.size() * faults.size() *
         splits.size() * sir_levels.size() * motion.size() * seeds.size();
}

namespace {

/// Share-weighted round robin: node i takes the class at position
/// i mod total_share of the share-expanded class sequence. The single
/// source of truth for class assignment (node configs and hub sessions
/// must agree on it).
const NodeClassSpec& select_node_class(const NodeMix& mix, int i) {
  const auto& classes = mix.classes;
  IOB_EXPECTS(!classes.empty(), "fleet point mix has no node classes");
  unsigned total_share = 0;
  for (const auto& c : classes) total_share += c.share;
  IOB_EXPECTS(total_share > 0, "mix shares sum to zero");
  unsigned r = static_cast<unsigned>(i) % total_share;
  for (const auto& c : classes) {
    if (r < c.share) return c;
    r -= c.share;
  }
  return classes.back();
}

/// Does this class participate in the point's split axis? Only classes
/// whose hub session carries an executable model can be partitioned.
bool class_splits(const FleetPoint& p, const NodeClassSpec& cls) {
  return p.split.enabled && cls.session && cls.session->net != nullptr;
}

/// Split-inference period: the time the class's raw stream took to fill one
/// unsplit inference window, so splitting preserves the inference rate.
double split_period_s(const NodeClassSpec& cls) {
  return static_cast<double>(cls.session->bytes_per_inference) * 8.0 /
         cls.base.output_rate_bps;
}

/// Fixed split point: round(leaf_fraction * n), clamped to [0, n].
std::size_t split_point_for(const nn::Model& net, double fraction) {
  const double n = static_cast<double>(net.layer_count());
  const double k = std::round(fraction * n);
  return static_cast<std::size_t>(std::clamp(k, 0.0, n));
}

/// Adaptive candidate list for a class: the analytic `CostModel` with the
/// variant's leaf silicon, the point's bus link priced at the class's
/// offered rate, and the point's transport precision. Pure function of the
/// point spec — deterministic across threads.
partition::AdaptiveSplitConfig adaptive_config_for(const FleetPoint& p,
                                                   const NodeClassSpec& cls) {
  partition::CostModel cost;
  cost.transport = p.precision;
  cost.leaf.energy_per_mac_j = p.split.leaf_energy_per_mac_j;
  const std::unique_ptr<const comm::Link> link = make_bus_link(p.bus);
  cost.leaf_hub = partition::CostModel::leg_from_link(*link, cls.base.output_rate_bps,
                                                      cls.base.frame_bytes);
  cost.hub_cloud = partition::CostModel::default_uplink();
  const partition::Partitioner part(*cls.session->net, cost);
  partition::AdaptiveSplitConfig acfg;
  acfg.candidates =
      partition::AdaptiveSplitController::candidates_from(part, 1.0 / split_period_s(cls));
  acfg.mission_time_s = p.split.mission_time_s;
  return acfg;
}

/// Initial split point of a class under the point's split variant (the
/// adaptive controller starts at its richest candidate). The node config
/// and the hub session must agree on this — single source of truth.
std::size_t initial_split_for(const FleetPoint& p, const NodeClassSpec& cls) {
  if (p.split.adaptive) return adaptive_config_for(p, cls).candidates.front().split_at;
  return split_point_for(*cls.session->net, p.split.leaf_fraction);
}

/// Resolve the config a class gives to node `i` of point `p`.
net::NodeConfig node_config_for_class(const FleetPoint& p, const NodeClassSpec& cls, int i) {
  static const std::string kDefaultStream = net::NodeConfig{}.stream;
  net::NodeConfig cfg = cls.base;
  cfg.name = cls.base.name + "-" + std::to_string(i);
  // Empty or left at the NodeConfig default -> one stream per node;
  // an explicitly set tag pins the whole class to a shared stream.
  const std::string& base_stream = cls.base.stream;
  cfg.stream = (base_stream.empty() || base_stream == kDefaultStream) ? cfg.name : base_stream;
  if (p.harvest.harvester) cfg.harvester = p.harvest.harvester;
  if (class_splits(p, cls)) {
    net::LeafSplit sp;
    sp.net = cls.session->net;
    sp.precision = p.precision;
    sp.period_s = split_period_s(cls);
    sp.energy_per_mac_j = p.split.leaf_energy_per_mac_j;
    if (p.split.adaptive) {
      sp.adaptive = adaptive_config_for(p, cls);
      sp.split_at = sp.adaptive->candidates.front().split_at;
    } else {
      sp.split_at = split_point_for(*sp.net, p.split.leaf_fraction);
    }
    cfg.split = std::move(sp);
  }
  return cfg;
}

/// Rewrite a class's session for the split the node config above selected:
/// the hub's share is the layer suffix (same recompute rule as
/// `Hub::on_repartition`). Identity without a split.
net::SessionConfig split_session_config(const FleetPoint& p, const NodeClassSpec& cls,
                                        net::SessionConfig s) {
  if (!class_splits(p, cls)) return s;
  const nn::Model& net = *s.net;
  const std::size_t k = initial_split_for(p, cls);
  const auto& profiles = net.profiles();
  std::uint64_t suffix_macs = 0;
  std::uint64_t suffix_params = 0;
  for (std::size_t i = k; i < net.layer_count(); ++i) {
    suffix_macs += profiles[i].macs;
    suffix_params += profiles[i].params;
  }
  const std::int64_t elems = k == 0 ? nn::shape_elems(net.input_shape())
                                    : nn::shape_elems(profiles[k - 1].output_shape);
  s.split_layers = k;
  s.macs_per_inference = suffix_macs;
  s.bytes_per_inference =
      static_cast<std::uint64_t>(nn::activation_wire_bytes(elems, p.precision));
  if (s.weight_bytes != 0) s.weight_bytes = suffix_params;  // 1 B/param, int8
  return s;
}

}  // namespace

net::NodeConfig fleet_node_config(const FleetPoint& p, int i) {
  return node_config_for_class(p, select_node_class(p.mix, i), i);
}

std::unique_ptr<net::NetworkSim> build_fleet_point(const FleetPoint& p) {
  IOB_EXPECTS(p.node_count >= 1, "fleet point needs at least one node");
  net::NetworkConfig nc;
  nc.seed = p.seed;
  nc.mac = p.mac.config;
  nc.hub.batch_window = p.batch_window;
  nc.hub.engine_threads = p.hub_engine_threads;
  nc.faults = make_fault_plan(p.fault);
  // Channel hostility axes: an engaged SIR level or motion chain installs a
  // `comm::ChannelDynamics` overlay; the clean/off defaults leave the config
  // disengaged so the bus path stays bit-identical to pre-dynamics grids.
  if (p.sir.level.aggressors > 0 && p.sir.level.duty_cycle > 0.0) {
    nc.dynamics.interference = p.sir.level;
  }
  if (p.motion.enabled) nc.dynamics.motion = p.motion.params;
  auto sim = std::make_unique<net::NetworkSim>(make_bus_link(p.bus), nc);

  for (int i = 0; i < p.node_count; ++i) {
    const NodeClassSpec& cls = select_node_class(p.mix, i);
    net::NodeConfig cfg = node_config_for_class(p, cls, i);
    const std::string stream = cfg.stream;
    sim->add_node(std::move(cfg));
    if (cls.session) {
      net::SessionConfig s = split_session_config(p, cls, *cls.session);
      s.stream = stream;
      s.precision = p.precision;  // the precision axis reaches every session
      sim->add_session(std::move(s));
    }
  }
  return sim;
}

FleetPointResult run_fleet_point(const FleetPoint& p) {
  IOB_EXPECTS(p.duration_s > 0, "fleet point duration must be positive");
  std::unique_ptr<net::NetworkSim> sim = build_fleet_point(p);
  FleetPointResult res;
  res.index = p.index;
  res.coord = p.coord;
  res.report = sim->run(p.duration_s);

  std::uint64_t delivered = 0, dropped = 0;
  double power = 0.0, latency = 0.0, avail = 0.0;
  double min_life = std::numeric_limits<double>::infinity();
  std::size_t perpetual = 0;
  for (const auto& n : res.report.nodes) {
    delivered += n.frames_delivered;
    dropped += n.frames_dropped;
    power += n.average_power_w;
    latency += n.mean_latency_s;
    avail += n.availability;
    min_life = std::min(min_life, n.projected_life_days);
    if (n.perpetual) ++perpetual;
  }
  const double offered = static_cast<double>(delivered + dropped);
  res.drop_rate = offered > 0 ? static_cast<double>(dropped) / offered : 0.0;
  res.mean_latency_s = latency / static_cast<double>(res.report.nodes.size());
  res.mean_leaf_power_w = power / static_cast<double>(res.report.nodes.size());
  res.min_life_days = min_life;
  res.perpetual_fraction =
      static_cast<double>(perpetual) / static_cast<double>(res.report.nodes.size());
  res.mean_availability = avail / static_cast<double>(res.report.nodes.size());
  return res;
}

std::string fleet_csv_header() {
  return
      "index,coord,drop_rate,mean_latency_s,mean_leaf_power_w,min_life_days,perpetual_fraction,"
      "hub_power_w,goodput_bps,bus_utilization,elapsed_s,nodes...\n";
}

std::string fleet_result_row(const FleetPointResult& r) {
  std::string out = std::to_string(r.index) + ",";
  // Byte-compat contract: the coord prefix serializes exactly the eight
  // pre-fault axes; the fault/split/SIR/motion coordinates appear only as
  // ":f<i>" / ":s<i>" / ":i<i>" / ":m<i>" suffixes on points actually swept
  // off the clean regime, so default grids stay byte-identical to older
  // output.
  for (std::size_t a = 0; a <= kAxisSeed; ++a) {
    out += std::to_string(r.coord[a]) + (a < kAxisSeed ? ":" : "");
  }
  if (r.coord[kAxisFault] != 0) out += ":f" + std::to_string(r.coord[kAxisFault]);
  if (r.coord[kAxisSplit] != 0) out += ":s" + std::to_string(r.coord[kAxisSplit]);
  if (r.coord[kAxisSir] != 0) out += ":i" + std::to_string(r.coord[kAxisSir]);
  if (r.coord[kAxisMotion] != 0) out += ":m" + std::to_string(r.coord[kAxisMotion]);
  out += "," + exact(r.drop_rate) + "," + exact(r.mean_latency_s) + "," +
         exact(r.mean_leaf_power_w) + "," +
         exact(r.min_life_days) + "," + exact(r.perpetual_fraction) + "," +
         exact(r.report.hub_power_w) + "," + exact(r.report.aggregate_goodput_bps) + "," +
         exact(r.report.bus_utilization) + "," + exact(r.report.elapsed_s);
  for (const auto& n : r.report.nodes) {
    out += "," + n.name + ":" + exact(n.average_power_w) + ":" + exact(n.comm_power_w) + ":" +
           exact(n.projected_life_days) + ":" + (n.perpetual ? "1" : "0") + ":" +
           std::to_string(n.frames_delivered) + ":" + std::to_string(n.frames_dropped) + ":" +
           exact(n.mean_latency_s) + ":" + exact(n.p99ish_latency_s);
    // Fault telemetry serializes only for nodes that saw fault activity
    // (clean-path rows, including their ARQ drops, are untouched bytes).
    // The clean-overflow and shedding buckets extend the group only when
    // non-zero: fault rows emitted by older code had neither, so their six
    // historical fields keep their exact bytes.
    if (n.reboots > 0 || n.downtime_s > 0.0 || n.dropped_fault > 0 || n.dropped_overflow > 0 ||
        n.dropped_overflow_clean > 0 || n.dropped_shed > 0) {
      out += ":flt:" + std::to_string(n.reboots) + ":" + exact(n.downtime_s) + ":" +
             exact(n.availability) + ":" + std::to_string(n.dropped_arq) + ":" +
             std::to_string(n.dropped_fault) + ":" + std::to_string(n.dropped_overflow);
      if (n.dropped_overflow_clean > 0 || n.dropped_shed > 0) {
        out += ":" + std::to_string(n.dropped_overflow_clean) + ":" +
               std::to_string(n.dropped_shed);
      }
    }
    // Split telemetry serializes only for nodes that actually ran a
    // split (clean-path rows are untouched bytes).
    if (n.split_inferences > 0 || n.split_repartitions > 0) {
      out += ":spl:" + std::to_string(n.split_at) + ":" +
             std::to_string(n.split_inferences) + ":" +
             std::to_string(n.split_activation_bytes) + ":" +
             exact(n.split_compute_energy_j) + ":" +
             std::to_string(n.split_repartitions);
    }
  }
  if (r.report.hub_crashes > 0) {
    out += ",hubflt:" + std::to_string(r.report.hub_crashes) + ":" +
           exact(r.report.hub_downtime_s) + ":" + exact(r.report.hub_availability);
  }
  out += "\n";
  return out;
}

std::string fleet_results_csv(const std::vector<FleetPointResult>& results) {
  std::string out = fleet_csv_header();
  for (const auto& r : results) out += fleet_result_row(r);
  return out;
}

FleetStreamRecord fleet_stream_record(const FleetPointResult& r) {
  FleetStreamRecord rec;
  rec.index = r.index;
  rec.drop_rate = r.drop_rate;
  rec.mean_latency_s = r.mean_latency_s;
  rec.mean_leaf_power_w = r.mean_leaf_power_w;
  rec.min_life_days = r.min_life_days;
  rec.perpetual_fraction = r.perpetual_fraction;
  rec.hub_power_w = r.report.hub_power_w;
  rec.goodput_bps = r.report.aggregate_goodput_bps;
  rec.bus_utilization = r.report.bus_utilization;
  rec.elapsed_s = r.report.elapsed_s;
  return rec;
}

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  // quantile_sorted (stream_sink.hpp) is the shared interpolation rule: this
  // function, the exact regime of OnlineQuantile and the summary fold all go
  // through the same code, so "exact" means bit-identical everywhere.
  return quantile_sorted(samples, q);
}

Fleet::Fleet(FleetAxes axes) : axes_(std::move(axes)) {
  IOB_EXPECTS(!axes_.node_counts.empty(), "node_counts axis is empty");
  IOB_EXPECTS(!axes_.macs.empty(), "macs axis is empty");
  IOB_EXPECTS(!axes_.mixes.empty(), "mixes axis is empty");
  IOB_EXPECTS(!axes_.harvests.empty(), "harvests axis is empty");
  IOB_EXPECTS(!axes_.buses.empty(), "buses axis is empty");
  IOB_EXPECTS(!axes_.batch_windows.empty(), "batch_windows axis is empty");
  IOB_EXPECTS(!axes_.precisions.empty(), "precisions axis is empty");
  IOB_EXPECTS(!axes_.faults.empty(), "faults axis is empty");
  IOB_EXPECTS(!axes_.splits.empty(), "splits axis is empty");
  IOB_EXPECTS(!axes_.sir_levels.empty(), "sir_levels axis is empty");
  IOB_EXPECTS(!axes_.motion.empty(), "motion axis is empty");
  IOB_EXPECTS(!axes_.seeds.empty(), "seeds axis is empty");
  for (const SirLevelVariant& iv : axes_.sir_levels) {
    IOB_EXPECTS(iv.level.duty_cycle >= 0.0 && iv.level.duty_cycle <= 1.0,
                "aggressor duty cycle must be in [0, 1]");
  }
  for (const SplitVariant& sv : axes_.splits) {
    if (!sv.enabled) continue;
    IOB_EXPECTS(sv.leaf_fraction >= 0.0 && sv.leaf_fraction <= 1.0,
                "split leaf fraction must be in [0, 1]");
    IOB_EXPECTS(sv.leaf_energy_per_mac_j >= 0.0, "leaf energy per MAC must be non-negative");
    IOB_EXPECTS(sv.mission_time_s > 0.0, "split mission time must be positive");
  }
  IOB_EXPECTS(axes_.duration_s > 0, "duration must be positive");
  for (const int n : axes_.node_counts) {
    IOB_EXPECTS(n >= 1, "node counts must be >= 1");
  }
  for (const auto& m : axes_.mixes) {
    IOB_EXPECTS(!m.classes.empty(), "a mix needs at least one node class");
    for (const auto& c : m.classes) IOB_EXPECTS(c.share >= 1, "class share must be >= 1");
  }
}

FleetPoint Fleet::point_at(std::size_t index) const {
  IOB_EXPECTS(index < size(), "fleet point index out of range");
  // Mixed-radix decode of the order contract (node_counts outermost ...
  // seeds innermost — file comment): peel the innermost axis first by
  // dividing out its size. Identical to expand()[index] by construction,
  // without materializing the grid.
  std::size_t rem = index;
  const auto next_digit = [&rem](std::size_t axis_size) {
    const std::size_t v = rem % axis_size;
    rem /= axis_size;
    return v;
  };
  const std::size_t si = next_digit(axes_.seeds.size());
  const std::size_t oi = next_digit(axes_.motion.size());
  const std::size_t ii = next_digit(axes_.sir_levels.size());
  const std::size_t li = next_digit(axes_.splits.size());
  const std::size_t fi = next_digit(axes_.faults.size());
  const std::size_t pi = next_digit(axes_.precisions.size());
  const std::size_t wi = next_digit(axes_.batch_windows.size());
  const std::size_t bi = next_digit(axes_.buses.size());
  const std::size_t hi = next_digit(axes_.harvests.size());
  const std::size_t xi = next_digit(axes_.mixes.size());
  const std::size_t mi = next_digit(axes_.macs.size());
  const std::size_t ni = next_digit(axes_.node_counts.size());

  FleetPoint p;
  p.index = index;
  p.coord = {ni, mi, xi, hi, bi, wi, pi, si, fi, li, ii, oi};
  p.node_count = axes_.node_counts[ni];
  p.mac = axes_.macs[mi];
  p.mix = axes_.mixes[xi];
  p.harvest = axes_.harvests[hi];
  p.bus = axes_.buses[bi];
  p.batch_window = axes_.batch_windows[wi];
  p.hub_engine_threads = axes_.hub_engine_threads;
  p.precision = axes_.precisions[pi];
  p.fault = axes_.faults[fi];
  p.split = axes_.splits[li];
  p.sir = axes_.sir_levels[ii];
  p.motion = axes_.motion[oi];
  p.seed = SweepRunner::point_seed(axes_.seeds[si], p.index);
  p.duration_s = axes_.duration_s;
  return p;
}

std::vector<FleetPoint> Fleet::expand() const {
  std::vector<FleetPoint> points;
  const std::size_t n = size();
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back(point_at(i));
  return points;
}

std::vector<FleetPointResult> Fleet::run(const SweepRunner& runner) const {
  const std::vector<FleetPoint> points = expand();
  return runner.map<FleetPointResult>(
      points.size(), [&](std::size_t i) { return run_fleet_point(points[i]); });
}

namespace {

std::array<std::size_t, kAxisCount> axis_sizes_of(const FleetAxes& axes) {
  return {axes.node_counts.size(), axes.macs.size(),          axes.mixes.size(),
          axes.harvests.size(),    axes.buses.size(),         axes.batch_windows.size(),
          axes.precisions.size(),  axes.seeds.size(),         axes.faults.size(),
          axes.splits.size(),      axes.sir_levels.size(),    axes.motion.size()};
}

std::string axis_value_label(const FleetAxes& axes, std::size_t a, std::size_t v) {
  switch (static_cast<FleetAxis>(a)) {
    case kAxisNodeCount: return "n=" + std::to_string(axes.node_counts[v]);
    case kAxisMac: return axes.macs[v].label;
    case kAxisMix: return axes.mixes[v].label;
    case kAxisHarvest: return axes.harvests[v].label;
    case kAxisBus: return to_string(axes.buses[v]);
    case kAxisBatch:
      return axes.batch_windows[v] == 0 ? "per-frame"
                                        : "batch-w" + std::to_string(axes.batch_windows[v]);
    case kAxisPrecision: return nn::to_string(axes.precisions[v]);
    case kAxisSeed: return "seed=" + std::to_string(axes.seeds[v]);
    case kAxisFault: return to_string(axes.faults[v]);
    case kAxisSplit: return axes.splits[v].label;
    case kAxisSir: return axes.sir_levels[v].label;
    case kAxisMotion: return axes.motion[v].label;
    default: return "?";
  }
}

/// Online per-cell accumulator. Means are running sums divided once at
/// finish — folded in flat-index order they produce the same bits as the
/// historical collect-then-divide; lifetime percentiles fold through
/// `OnlineQuantile` (bit-identical to the sorted-vector path up to 512
/// samples, within its documented 1% bound beyond).
struct CellAccum {
  OnlineQuantile life;
  double perpetual_nodes = 0.0;
  double total_nodes = 0.0;
  double goodput = 0.0;
  double drop = 0.0;
  double latency = 0.0;
  double util = 0.0;
  double avail = 0.0;
  std::size_t points = 0;

  void fold(const FleetPointResult& r) {
    for (const auto& n : r.report.nodes) {
      life.add(n.projected_life_days);
      if (n.perpetual) perpetual_nodes += 1.0;
      total_nodes += 1.0;
    }
    goodput += r.report.aggregate_goodput_bps;
    drop += r.drop_rate;
    latency += r.mean_latency_s;
    util += r.report.bus_utilization;
    avail += r.mean_availability;
    ++points;
  }

  [[nodiscard]] AxisCell finish(std::string label) const {
    AxisCell cell;
    cell.label = std::move(label);
    cell.points = points;
    if (points == 0) return cell;
    cell.life_p10_days = life.quantile(0.10);
    cell.life_p50_days = life.quantile(0.50);
    cell.life_p90_days = life.quantile(0.90);
    cell.life_approx = life.approximate();
    const double np = static_cast<double>(points);
    cell.perpetual_fraction = total_nodes > 0 ? perpetual_nodes / total_nodes : 0.0;
    cell.mean_goodput_bps = goodput / np;
    cell.mean_drop_rate = drop / np;
    cell.mean_latency_s = latency / np;
    cell.mean_bus_utilization = util / np;
    cell.mean_availability = avail / np;
    return cell;
  }
};

/// One-pass marginal-summary fold: one overall cell plus one cell per axis
/// value, every cell updated as each result streams by in flat-index order.
/// `Fleet::summarize` and `Fleet::run_streaming` share this fold, which is
/// why a streaming summary equals the in-memory one bit for bit.
class FleetFold {
 public:
  /// Per-value marginals stop being a readable table (and start costing an
  /// accumulator per value) past this many values on one axis. Above it the
  /// axis keeps its slot in `FleetSummary::axes` but with no cells — the
  /// population-scale seed axis of a streaming grid is a replicate axis, and
  /// its per-replicate marginal is noise (docs/scaling.md). Every
  /// pre-streaming grid in the repo sits far below the cap, so historical
  /// summaries are unchanged.
  static constexpr std::size_t kMaxMarginalCells = 64;

  explicit FleetFold(const FleetAxes& axes) : axes_(&axes) {
    const std::array<std::size_t, kAxisCount> sizes = axis_sizes_of(axes);
    for (std::size_t a = 0; a < kAxisCount; ++a) {
      if (sizes[a] <= kMaxMarginalCells) cells_[a].resize(sizes[a]);
    }
  }

  void add(const FleetPointResult& r) {
    overall_.fold(r);
    for (std::size_t a = 0; a < kAxisCount; ++a) {
      if (r.coord[a] < cells_[a].size()) cells_[a][r.coord[a]].fold(r);
    }
    ++total_;
  }

  [[nodiscard]] FleetSummary finish() const {
    FleetSummary summary;
    summary.total_points = total_;
    summary.overall = overall_.finish("all");
    for (std::size_t a = 0; a < kAxisCount; ++a) {
      std::vector<AxisCell> out;
      out.reserve(cells_[a].size());
      for (std::size_t v = 0; v < cells_[a].size(); ++v) {
        out.push_back(cells_[a][v].finish(axis_value_label(*axes_, a, v)));
      }
      summary.axes.emplace_back(to_string(static_cast<FleetAxis>(a)), std::move(out));
    }
    return summary;
  }

 private:
  const FleetAxes* axes_;
  CellAccum overall_;
  std::array<std::vector<CellAccum>, kAxisCount> cells_;
  std::size_t total_ = 0;
};

}  // namespace

FleetSummary Fleet::summarize(const std::vector<FleetPointResult>& results) const {
  FleetFold fold(axes_);
  for (const auto& r : results) fold.add(r);
  return fold.finish();
}

FleetStreamResult Fleet::run_streaming(const SweepRunner& runner,
                                       const FleetStreamConfig& cfg) const {
  const std::size_t n = size();
  const std::size_t batch = std::max<std::size_t>(std::size_t{1}, cfg.batch_points);
  std::unique_ptr<StreamSink> sink;
  if (cfg.spill) {
    sink = std::make_unique<StreamSink>(*cfg.spill);
    if (cfg.spill->format == StreamFormat::kCsv) sink->write_header(fleet_csv_header());
  }
  FleetFold fold(axes_);

  const auto launch = [&](std::size_t begin, std::size_t end) {
    return runner.map_async<FleetPointResult>(
        end - begin,
        [this, begin](std::size_t i) { return run_fleet_point(point_at(begin + i)); });
  };

  FleetStreamResult out;
  out.points = n;
  std::size_t inflight_end = std::min(batch, n);
  BatchFuture<FleetPointResult> inflight = launch(0, inflight_end);
  std::size_t begin = 0;
  while (begin < n) {
    std::vector<FleetPointResult> results = inflight.get();
    const std::size_t next_begin = inflight_end;
    if (next_begin < n) {
      // Double buffering: batch k+1 executes on the pool while this thread
      // folds and spills batch k. One batch in flight at a time (the
      // map_async contract), so peak memory is two batches of results.
      inflight_end = std::min(next_begin + batch, n);
      inflight = launch(next_begin, inflight_end);
    }
    // Batches arrive in flat-index order and each batch is internally
    // index-ordered (map's merge), so the fold sequence and the spilled
    // rows are identical to a serial in-memory run at any thread count.
    for (const FleetPointResult& r : results) {
      fold.add(r);
      if (sink) {
        if (cfg.spill->format == StreamFormat::kCsv) {
          sink->append_row(fleet_result_row(r));
        } else {
          const FleetStreamRecord rec = fleet_stream_record(r);
          sink->append(&rec, sizeof(rec));
        }
      }
    }
    begin = next_begin;
  }
  if (sink) {
    sink->finish();
    out.spilled_rows = sink->rows();
    out.spilled_bytes = sink->bytes();
    out.spill_shards = sink->shards();
  }
  out.summary = fold.finish();
  return out;
}

std::string FleetSummary::to_string() const {
  std::string out;
  out += "fleet: " + std::to_string(total_points) + " points\n";
  bool any_approx = false;
  const auto render_axis = [&](const std::string& name, const std::vector<AxisCell>& cells) {
    common::Table t({name, "points", "life p10", "life p50", "life p90", "perpetual",
                     "mean goodput", "drop rate", "mean latency", "bus util", "avail"});
    for (const AxisCell& c : cells) {
      // "~" marks online-sketch estimates (cells past the exact-sample
      // limit); unmarked lifetimes are exact.
      const std::string mark = c.life_approx ? "~" : "";
      if (c.life_approx) any_approx = true;
      t.add_row({c.label, std::to_string(c.points), mark + life_str(c.life_p10_days),
                 mark + life_str(c.life_p50_days), mark + life_str(c.life_p90_days),
                 common::fixed(c.perpetual_fraction * 100.0, 1) + "%",
                 common::si_format(c.mean_goodput_bps, "b/s"),
                 common::fixed(c.mean_drop_rate * 100.0, 2) + "%",
                 common::si_format(c.mean_latency_s, "s"),
                 common::fixed(c.mean_bus_utilization * 100.0, 1) + "%",
                 common::fixed(c.mean_availability * 100.0, 1) + "%"});
    }
    out += t.to_string();
  };
  render_axis("overall", {overall});
  for (const auto& [name, cells] : axes) {
    if (cells.size() < 2) continue;  // marginal over a singleton axis = overall
    out += "\n";
    render_axis(name, cells);
  }
  if (any_approx) {
    out += "\n~ = online-quantile estimate, rel. error <= " +
           common::fixed(OnlineQuantile::kRelativeError * 100.0, 0) +
           "% (zero/perpetual bands exact; docs/scaling.md)\n";
  }
  return out;
}

}  // namespace iob::core
