#pragma once
/// \file architecture.hpp
/// The paper's central comparison, as types: *conventional* IoB nodes
/// (every wearable carries sensors + its own CPU + a radio; Fig. 1 left)
/// versus *human-inspired* nodes (ULP sensors + optional ISA + Wi-R to a
/// shared wearable brain; Fig. 1 right).

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace iob::core {

enum class NodeArchitecture {
  kConventional,   ///< sensors ~100s uW + CPU ~mW + radio ~10s mW
  kHumanInspired,  ///< sensors 10-50 uW + ISA ~100 uW + Wi-R ~100 uW
};

/// An AI-enabled sensing task living on a wearable node.
struct WorkloadSpec {
  std::string name;
  double raw_rate_bps;          ///< sensor output before any processing
  std::uint64_t inference_macs_per_s;  ///< AI model compute, sustained
  double isa_output_rate_bps;   ///< traffic after ISA (codec/features)
  std::uint64_t isa_macs_per_s; ///< ISA compute (codec/feature extraction)
  double result_rate_bps;       ///< classification/result traffic only
};

/// Silicon/platform constants shared by the power models (DESIGN.md Sec. 4).
struct SiliconConstants {
  double leaf_energy_per_mac_j = 20e-12;  ///< MCU-class
  double hub_energy_per_mac_j = 5e-12;    ///< app-processor class
  double cpu_static_power_w = 200e-6;     ///< leaf CPU leakage + clocks when on
  double ulp_sense_factor = 0.35;         ///< ULP AFE co-design saving (Fig. 1)
};

/// Paper-motivated reference workloads (Sec. II device classes).
WorkloadSpec ecg_patch_workload();     ///< biopotential patch + arrhythmia CNN
WorkloadSpec audio_pendant_workload(); ///< microphone + keyword spotting
WorkloadSpec camera_node_workload();   ///< QVGA camera + visual wake words

std::string to_string(NodeArchitecture arch);

}  // namespace iob::core
