#pragma once
/// \file explorer.hpp
/// Design-space exploration: the sweeps behind Fig. 3 and the ablation
/// benches — battery life vs data rate, the perpetual-region boundary,
/// harvesting feasibility, and the offload-crossover link energy.

#include <string>
#include <vector>

#include "comm/link.hpp"
#include "core/sweep_runner.hpp"
#include "energy/battery.hpp"
#include "energy/lifetime.hpp"
#include "energy/sensing_power.hpp"
#include "nn/model.hpp"
#include "partition/cost_model.hpp"

namespace iob::core {

/// One point on the Fig. 3 curve.
struct Fig3Point {
  double rate_bps = 0.0;
  double sense_power_w = 0.0;
  double comm_power_w = 0.0;
  double total_power_w = 0.0;
  double life_days = 0.0;  ///< +inf if harvest-covered (not used on base curve)
  energy::LifeClass life_class{};
};

class DesignSpaceExplorer {
 public:
  /// \param comm_energy_per_bit_j the Wi-R figure of merit (100 pJ/bit)
  /// \param idle_floor_w always-on platform floor added to the curve
  DesignSpaceExplorer(energy::Battery battery, energy::SensingPowerModel sensing = {},
                      double comm_energy_per_bit_j = 100e-12, double idle_floor_w = 0.5e-6);

  /// Battery life at one data rate (the Fig. 3 model: P = P_sense(R) +
  /// e_bit * R + floor; life = E_batt / P).
  [[nodiscard]] Fig3Point point(double rate_bps) const;

  /// Log-spaced sweep of the full curve (serial).
  [[nodiscard]] std::vector<Fig3Point> sweep(double min_rate_bps, double max_rate_bps,
                                             std::size_t points_per_decade = 4) const;

  /// Same sweep fanned across `runner`; results are merged in index order,
  /// so the returned vector is byte-identical to the serial overload at any
  /// thread count (each point is a pure function of its rate).
  [[nodiscard]] std::vector<Fig3Point> sweep(const SweepRunner& runner, double min_rate_bps,
                                             double max_rate_bps,
                                             std::size_t points_per_decade = 4) const;

  /// Largest data rate still giving > 1 year battery life (the perpetual
  /// region's right edge), by bisection. Returns 0 if even the minimum rate
  /// fails, +inf if the maximum rate is still perpetual.
  [[nodiscard]] double perpetual_boundary_bps(double min_rate_bps = 1.0,
                                              double max_rate_bps = 1e9) const;

  /// Smallest harvest power (W) that makes a node at `rate_bps` charging-
  /// free (net-zero battery drain).
  [[nodiscard]] double required_harvest_w(double rate_bps) const;

  [[nodiscard]] const energy::Battery& battery() const { return battery_; }
  [[nodiscard]] double comm_energy_per_bit_j() const { return e_bit_j_; }

 private:
  energy::Battery battery_;
  energy::SensingPowerModel sensing_;
  double e_bit_j_;
  double idle_floor_w_;
};

/// Link energy/bit below which *full offload* of `model` beats all-on-leaf
/// for leaf energy (the architectural crossover the paper's Wi-R enables).
/// Refines over sender energy/bit in [lo, hi]; the rest of the cost model
/// is taken from `base`. Delegates to the runner grid-refine overload on a
/// 1-thread pool — there is one refinement algorithm, and its result is
/// bit-exact identical at every thread count.
double offload_crossover_energy_per_bit_j(const nn::Model& model, partition::CostModel base,
                                          double lo_j = 1e-13, double hi_j = 1e-6);

/// Runner-parallel core: each refinement round evaluates a log-spaced
/// batch of candidate energies across the pool and narrows the bracket to
/// the first losing candidate (scanned in index order), so the result is
/// bit-exact identical at every thread count — including a 1-thread runner.
double offload_crossover_energy_per_bit_j(const nn::Model& model, partition::CostModel base,
                                          const SweepRunner& runner, double lo_j = 1e-13,
                                          double hi_j = 1e-6);

/// One point on the hub-batching amortization curve: at batch size N, each
/// inference pays `weight_share_j = weight_cost / N` on top of its fixed
/// per-sample MAC cost.
struct HubBatchPoint {
  unsigned batch = 1;
  double energy_per_inference_j = 0.0;
  double weight_share_j = 0.0;  ///< amortized weight-streaming component
};

/// Analytic form of the superframe-batched hub engine (`net::Hub` with
/// `batch_window > 0`): energy/inference vs batch size for a model with
/// `macs_per_inference` MACs and `weight_bytes` of int8 weights. The
/// batching axis the design-space sweeps and `bench_hub_batching` plot.
[[nodiscard]] std::vector<HubBatchPoint> hub_batching_curve(
    std::uint64_t macs_per_inference, std::uint64_t weight_bytes, double energy_per_mac_j,
    double energy_per_weight_byte_j, const std::vector<unsigned>& batch_sizes);

}  // namespace iob::core
