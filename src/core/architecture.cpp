#include "core/architecture.hpp"

namespace iob::core {

using namespace iob::units;

WorkloadSpec ecg_patch_workload() {
  // 2-lead ECG at 360 Hz x 12 bit ~ 8.6 kb/s; beat classifier ~ 60k MACs per
  // beat at ~1.2 beats/s; delta+varint codec roughly halves the stream;
  // results are a handful of bytes per beat.
  WorkloadSpec w;
  w.name = "ECG patch";
  w.raw_rate_bps = 8.6 * kbps;
  w.inference_macs_per_s = 75'000;
  w.isa_output_rate_bps = 4.0 * kbps;
  w.isa_macs_per_s = 20'000;
  w.result_rate_bps = 40.0;
  return w;
}

WorkloadSpec audio_pendant_workload() {
  // 16 kHz x 16 bit PCM = 256 kb/s; DS-CNN KWS ~ 2.7 MMAC per 1 s window;
  // ADPCM 4:1 -> 64 kb/s; wake-word results are tiny.
  WorkloadSpec w;
  w.name = "audio pendant";
  w.raw_rate_bps = 256.0 * kbps;
  w.inference_macs_per_s = 2'700'000;
  w.isa_output_rate_bps = 64.0 * kbps;
  w.isa_macs_per_s = 400'000;
  w.result_rate_bps = 100.0;
  return w;
}

WorkloadSpec camera_node_workload() {
  // QVGA 15 fps 8-bit = 9.2 Mb/s raw; visual-wake-words net ~ 7.5 MMAC per
  // frame x 15 fps; MJPEG ~ 12:1 -> 0.77 Mb/s; person-present results tiny.
  WorkloadSpec w;
  w.name = "camera node";
  w.raw_rate_bps = 9.2 * Mbps;
  w.inference_macs_per_s = 112'000'000;
  w.isa_output_rate_bps = 0.77 * Mbps;
  w.isa_macs_per_s = 3'000'000;
  w.result_rate_bps = 60.0;
  return w;
}

std::string to_string(NodeArchitecture arch) {
  switch (arch) {
    case NodeArchitecture::kConventional: return "conventional (CPU+radio)";
    case NodeArchitecture::kHumanInspired: return "human-inspired (ISA+Wi-R)";
  }
  return "?";
}

}  // namespace iob::core
