#pragma once
/// \file report.hpp
/// Human-readable report rendering for the public API results (comparison
/// rows, network reports, Fig. 3 sweeps) — shared by examples and benches.

#include <string>
#include <vector>

#include "core/comparison.hpp"
#include "core/explorer.hpp"
#include "net/network_sim.hpp"

namespace iob::core {

/// Fig.-1-style per-component power table for a set of comparison rows.
std::string render_comparison(const std::vector<ComparisonRow>& rows);

/// Per-node power/battery/latency table for a finished network simulation.
std::string render_network_report(const net::NetworkReport& report);

/// Fig.-3-style curve table.
std::string render_fig3(const std::vector<Fig3Point>& points);

}  // namespace iob::core
