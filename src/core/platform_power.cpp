#include "core/platform_power.hpp"

#include "common/expect.hpp"

namespace iob::core {

PlatformPowerModel::PlatformPowerModel(const comm::Link& radio_link, const comm::Link& body_link,
                                       energy::SensingPowerModel sensing,
                                       SiliconConstants silicon)
    : radio_link_(radio_link),
      body_link_(body_link),
      sensing_(std::move(sensing)),
      silicon_(silicon) {}

PowerBreakdown PlatformPowerModel::evaluate(NodeArchitecture arch,
                                            const WorkloadSpec& w) const {
  IOB_EXPECTS(w.raw_rate_bps > 0, "workload raw rate must be positive");
  PowerBreakdown b;

  if (arch == NodeArchitecture::kConventional) {
    // Full-function node: conventional AFE, local inference, radio reports.
    b.sense_w = sensing_.power_w(w.raw_rate_bps);
    b.compute_w = static_cast<double>(w.inference_macs_per_s) * silicon_.leaf_energy_per_mac_j +
                  silicon_.cpu_static_power_w;
    b.comm_w = radio_link_.stream_tx_power_w(w.result_rate_bps);
    b.hub_induced_w = 0.0;
    return b;
  }

  // Human-inspired leaf: ULP front-end, ISA only, Wi-R streaming to hub.
  b.sense_w = sensing_.power_w(w.raw_rate_bps) * silicon_.ulp_sense_factor;
  b.compute_w = static_cast<double>(w.isa_macs_per_s) * silicon_.leaf_energy_per_mac_j;
  b.comm_w = body_link_.stream_tx_power_w(w.isa_output_rate_bps);
  // Hub inherits the model plus the bus receive cost for this stream.
  b.hub_induced_w =
      static_cast<double>(w.inference_macs_per_s) * silicon_.hub_energy_per_mac_j +
      w.isa_output_rate_bps * body_link_.spec().rx_energy_per_bit_j;
  return b;
}

double PlatformPowerModel::reduction_factor(const WorkloadSpec& workload) const {
  const double conv = evaluate(NodeArchitecture::kConventional, workload).node_total_w();
  const double hi = evaluate(NodeArchitecture::kHumanInspired, workload).node_total_w();
  IOB_ENSURES(hi > 0, "human-inspired node power must be positive");
  return conv / hi;
}

}  // namespace iob::core
