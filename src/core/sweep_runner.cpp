#include "core/sweep_runner.hpp"

#include <cmath>

#include "common/expect.hpp"
#include "sim/rng.hpp"

namespace iob::core {

SweepRunner::SweepRunner(std::size_t threads)
    : pool_(std::make_unique<sim::TaskPool>(threads)) {}

std::uint64_t SweepRunner::point_seed(std::uint64_t base_seed, std::size_t index) {
  return sim::Rng(base_seed).fork(static_cast<std::uint64_t>(index)).next_u64();
}

std::vector<double> log_grid(double min_v, double max_v, std::size_t points_per_decade) {
  IOB_EXPECTS(min_v > 0 && max_v > min_v, "invalid sweep range");
  IOB_EXPECTS(points_per_decade >= 1, "need at least one point per decade");
  std::vector<double> out;
  const double step = std::pow(10.0, 1.0 / static_cast<double>(points_per_decade));
  for (double v = min_v; v <= max_v * 1.0000001; v *= step) out.push_back(v);
  return out;
}

}  // namespace iob::core
