#pragma once
/// \file bitstream.hpp
/// MSB-first bit-level I/O for the entropy coders.

#include <cstdint>
#include <vector>

namespace iob::isa {

class BitWriter {
 public:
  /// Append the low `count` bits of `bits` (MSB of the field first).
  void write(std::uint64_t bits, unsigned count);

  /// Pad to a byte boundary with zeros and return the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  unsigned filled_ = 0;  ///< bits used in current_
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes);

  /// Read `count` bits MSB-first. Throws std::out_of_range past the end.
  std::uint64_t read(unsigned count);

  /// Read a single bit.
  unsigned read_bit();

  [[nodiscard]] std::size_t bits_remaining() const;

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_bits_ = 0;
};

}  // namespace iob::isa
