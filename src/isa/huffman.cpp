#include "isa/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <utility>

#include "common/expect.hpp"

namespace iob::isa {

namespace {

/// Huffman tree construction -> per-symbol code lengths.
std::vector<std::uint8_t> build_lengths(const std::vector<std::uint64_t>& freqs) {
  IOB_EXPECTS(!freqs.empty(), "frequency table must be non-empty");
  struct Node {
    std::uint64_t freq;
    int id;  ///< < n_symbols: leaf; otherwise internal
  };
  const auto cmp = [](const Node& a, const Node& b) {
    if (a.freq != b.freq) return a.freq > b.freq;
    return a.id > b.id;  // deterministic tie-break
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);

  const int n = static_cast<int>(freqs.size());
  int live = 0;
  for (int i = 0; i < n; ++i) {
    if (freqs[static_cast<std::size_t>(i)] > 0) {
      heap.push(Node{freqs[static_cast<std::size_t>(i)], i});
      ++live;
    }
  }
  IOB_EXPECTS(live >= 1, "at least one symbol must have non-zero frequency");

  std::vector<std::uint8_t> lengths(freqs.size(), 0);
  if (live == 1) {
    // Single-symbol alphabet still needs one bit on the wire.
    lengths[static_cast<std::size_t>(heap.top().id)] = 1;
    return lengths;
  }

  // parent[] over leaves (0..n-1) and internal nodes (n..).
  std::vector<int> parent(freqs.size(), -1);
  int next_id = n;
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    parent.push_back(-1);  // slot for next_id
    if (a.id < static_cast<int>(parent.size())) parent[static_cast<std::size_t>(a.id)] = next_id;
    if (b.id < static_cast<int>(parent.size())) parent[static_cast<std::size_t>(b.id)] = next_id;
    heap.push(Node{a.freq + b.freq, next_id});
    ++next_id;
  }

  for (int i = 0; i < n; ++i) {
    if (freqs[static_cast<std::size_t>(i)] == 0) continue;
    unsigned depth = 0;
    for (int cur = parent[static_cast<std::size_t>(i)]; cur != -1;
         cur = parent[static_cast<std::size_t>(cur)]) {
      ++depth;
    }
    lengths[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(depth);
  }
  return lengths;
}

}  // namespace

HuffmanCodec HuffmanCodec::from_frequencies(const std::vector<std::uint64_t>& freqs) {
  return HuffmanCodec(build_lengths(freqs));
}

HuffmanCodec HuffmanCodec::from_code_lengths(std::vector<std::uint8_t> lengths) {
  return HuffmanCodec(std::move(lengths));
}

HuffmanCodec::HuffmanCodec(std::vector<std::uint8_t> lengths) : lengths_(std::move(lengths)) {
  build_canonical();
}

void HuffmanCodec::build_canonical() {
  max_len_ = 0;
  for (const auto l : lengths_) max_len_ = std::max<unsigned>(max_len_, l);
  IOB_EXPECTS(max_len_ >= 1 && max_len_ <= 57, "code lengths out of range");

  // Symbols sorted by (length, symbol) get consecutive canonical codes.
  std::vector<unsigned> order;
  for (unsigned s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [this](unsigned a, unsigned b) {
    if (lengths_[a] != lengths_[b]) return lengths_[a] < lengths_[b];
    return a < b;
  });

  codes_.assign(lengths_.size(), 0);
  first_code_.assign(max_len_ + 1, 0);
  first_index_.assign(max_len_ + 1, 0);
  count_at_len_.assign(max_len_ + 1, 0);
  symbols_by_code_ = order;

  for (const unsigned s : order) ++count_at_len_[lengths_[s]];

  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (unsigned len = 1; len <= max_len_; ++len) {
    first_code_[len] = code;
    first_index_[len] = index;
    code += count_at_len_[len];
    index += count_at_len_[len];
    code <<= 1;
  }

  // Assign per-symbol codes.
  std::vector<std::uint32_t> next_code(first_code_);
  for (const unsigned s : order) {
    codes_[s] = next_code[lengths_[s]]++;
  }
}

void HuffmanCodec::encode(unsigned symbol, BitWriter& out) const {
  IOB_EXPECTS(symbol < lengths_.size() && lengths_[symbol] > 0, "symbol has no code");
  out.write(codes_[symbol], lengths_[symbol]);
}

unsigned HuffmanCodec::decode(BitReader& in) const {
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= max_len_; ++len) {
    code = (code << 1) | in.read_bit();
    if (count_at_len_[len] == 0) continue;
    const std::uint32_t offset = code - first_code_[len];
    if (code >= first_code_[len] && offset < count_at_len_[len]) {
      return symbols_by_code_[first_index_[len] + offset];
    }
  }
  throw std::runtime_error("invalid Huffman prefix");
}

double HuffmanCodec::expected_length_bits(const std::vector<std::uint64_t>& freqs) const {
  IOB_EXPECTS(freqs.size() == lengths_.size(), "frequency table size mismatch");
  const double total = static_cast<double>(std::accumulate(freqs.begin(), freqs.end(), std::uint64_t{0}));
  if (total == 0.0) return 0.0;
  double bits = 0.0;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    bits += static_cast<double>(freqs[s]) * lengths_[s];
  }
  return bits / total;
}

double HuffmanCodec::entropy_bits(const std::vector<std::uint64_t>& freqs) {
  const double total = static_cast<double>(std::accumulate(freqs.begin(), freqs.end(), std::uint64_t{0}));
  if (total == 0.0) return 0.0;
  double h = 0.0;
  for (const auto f : freqs) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace iob::isa
