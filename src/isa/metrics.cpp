#include "isa/metrics.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace iob::isa {

double psnr_db(const GrayFrame& a, const GrayFrame& b) {
  IOB_EXPECTS(a.width == b.width && a.height == b.height, "frame size mismatch");
  IOB_EXPECTS(!a.pixels.empty(), "frames must be non-empty");
  double mse = 0.0;
  for (std::size_t i = 0; i < a.pixels.size(); ++i) {
    const double d = static_cast<double>(a.pixels[i]) - static_cast<double>(b.pixels[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.pixels.size());
  if (mse == 0.0) return 200.0;  // identical
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

double snr_db(const std::vector<float>& reference, const std::vector<float>& reconstruction) {
  IOB_EXPECTS(reference.size() == reconstruction.size() && !reference.empty(),
              "signals must match and be non-empty");
  double sig = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double s = reference[i];
    const double e = s - reconstruction[i];
    sig += s * s;
    noise += e * e;
  }
  if (noise == 0.0) return 200.0;
  return 10.0 * std::log10(sig / noise);
}

double compression_ratio(std::size_t raw_bytes, std::size_t coded_bytes) {
  IOB_EXPECTS(coded_bytes > 0, "coded size must be positive");
  return static_cast<double>(raw_bytes) / static_cast<double>(coded_bytes);
}

}  // namespace iob::isa
