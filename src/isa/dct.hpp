#pragma once
/// \file dct.hpp
/// Discrete Cosine Transforms: the separable 8x8 block DCT-II/III used by
/// the MJPEG-style ISA codec, a generic 1-D DCT-II for MFCC features, and
/// the JPEG zig-zag scan order.

#include <array>
#include <cstddef>
#include <vector>

namespace iob::isa {

inline constexpr int kBlock = 8;
using Block = std::array<float, kBlock * kBlock>;  ///< row-major 8x8

/// Orthonormal forward 8x8 DCT-II.
Block dct8x8(const Block& spatial);

/// Orthonormal inverse (DCT-III); exact inverse of dct8x8 up to float error.
Block idct8x8(const Block& coeffs);

/// JPEG zig-zag scan order: zigzag_order()[k] is the row-major index of the
/// k-th coefficient in scan order.
const std::array<int, kBlock * kBlock>& zigzag_order();

/// Generic orthonormal 1-D DCT-II of arbitrary length (O(n^2); used for
/// MFCC coefficient extraction, n ~ 40).
std::vector<float> dct2(const std::vector<float>& x);

}  // namespace iob::isa
