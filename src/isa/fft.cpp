#include "isa/fft.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace iob::isa {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_core(std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  IOB_EXPECTS(is_pow2(n), "FFT size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& v : x) v /= static_cast<double>(n);
  }
}

}  // namespace

void fft(std::vector<Complex>& x) { fft_core(x, false); }
void ifft(std::vector<Complex>& x) { fft_core(x, true); }

std::vector<Complex> rfft(const std::vector<float>& x) {
  IOB_EXPECTS(!x.empty(), "signal must be non-empty");
  std::vector<Complex> c(next_pow2(x.size()), Complex(0.0, 0.0));
  for (std::size_t i = 0; i < x.size(); ++i) c[i] = Complex(x[i], 0.0);
  fft(c);
  return c;
}

std::vector<double> magnitude_spectrum(const std::vector<float>& x) {
  const auto c = rfft(x);
  std::vector<double> mag(c.size() / 2 + 1);
  for (std::size_t i = 0; i < mag.size(); ++i) mag[i] = std::abs(c[i]);
  return mag;
}

}  // namespace iob::isa
