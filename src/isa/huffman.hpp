#pragma once
/// \file huffman.hpp
/// Canonical Huffman coding over small integer alphabets — the entropy
/// stage of the MJPEG-style ISA codec. Code tables are exchanged as the
/// per-symbol code-length vector (canonical codes are reconstructed on
/// both sides), exactly as deployed formats do.

#include <cstdint>
#include <vector>

#include "isa/bitstream.hpp"

namespace iob::isa {

class HuffmanCodec {
 public:
  /// Build optimal code lengths from symbol frequencies (freq[i] == 0 means
  /// symbol i never occurs and receives no code). At least one symbol must
  /// have non-zero frequency.
  static HuffmanCodec from_frequencies(const std::vector<std::uint64_t>& freqs);

  /// Rebuild a codec from transmitted code lengths (0 = absent symbol).
  static HuffmanCodec from_code_lengths(std::vector<std::uint8_t> lengths);

  void encode(unsigned symbol, BitWriter& out) const;

  /// Decode one symbol; throws std::runtime_error on an invalid prefix.
  [[nodiscard]] unsigned decode(BitReader& in) const;

  [[nodiscard]] const std::vector<std::uint8_t>& code_lengths() const { return lengths_; }

  /// Mean code length (bits/symbol) under the build frequencies — compared
  /// against the source entropy in tests.
  [[nodiscard]] double expected_length_bits(const std::vector<std::uint64_t>& freqs) const;

  /// Shannon entropy (bits/symbol) of a frequency table.
  static double entropy_bits(const std::vector<std::uint64_t>& freqs);

 private:
  explicit HuffmanCodec(std::vector<std::uint8_t> lengths);
  void build_canonical();

  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;          ///< canonical code per symbol
  // decode acceleration: for each code length L, the first canonical code
  // value and the index of its first symbol in symbols_by_code_.
  std::vector<std::uint32_t> first_code_;
  std::vector<std::uint32_t> first_index_;
  std::vector<std::uint32_t> count_at_len_;
  std::vector<unsigned> symbols_by_code_;
  unsigned max_len_ = 0;
};

}  // namespace iob::isa
