#include "isa/mjpeg_delta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/expect.hpp"
#include "isa/dct.hpp"
#include "isa/entropy_detail.hpp"

namespace iob::isa {

namespace {

/// Quantized-residual token encoding with zero-block skipping: the stream
/// is [varint skip-count][coded block]* with a trailing skip if the frame
/// ends in zero blocks. Coded blocks carry an *absolute* DC varint
/// (residual DCs center on zero, so prediction buys nothing) followed by
/// the intra AC grammar ((run, varint) pairs, EOB byte 63). Also produces
/// the *dequantized* residual so the encoder can track the decoder's state.
void encode_residual_blocks(const std::vector<float>& residual, int width, int height,
                            const std::vector<int>& quant, std::vector<std::uint8_t>& tokens,
                            std::vector<float>& recon_residual) {
  const auto& zz = zigzag_order();
  recon_residual.assign(residual.size(), 0.0f);
  std::int32_t zero_run = 0;
  for (int by = 0; by < height; by += kBlock) {
    for (int bx = 0; bx < width; bx += kBlock) {
      Block spatial{};
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          spatial[static_cast<std::size_t>(y * kBlock + x)] =
              residual[static_cast<std::size_t>(by + y) * static_cast<std::size_t>(width) +
                       static_cast<std::size_t>(bx + x)];
        }
      }
      const Block coeffs = dct8x8(spatial);

      std::array<int, 64> q{};
      Block deq{};
      bool all_zero = true;
      for (int i = 0; i < 64; ++i) {
        const int rm = zz[static_cast<std::size_t>(i)];
        q[static_cast<std::size_t>(i)] = static_cast<int>(
            std::lround(coeffs[static_cast<std::size_t>(rm)] /
                        static_cast<float>(quant[static_cast<std::size_t>(rm)])));
        all_zero &= (q[static_cast<std::size_t>(i)] == 0);
        deq[static_cast<std::size_t>(rm)] =
            static_cast<float>(q[static_cast<std::size_t>(i)]) *
            static_cast<float>(quant[static_cast<std::size_t>(rm)]);
      }

      if (all_zero) {
        ++zero_run;  // recon_residual stays zero for this block
        continue;
      }

      detail::put_varint(tokens, zero_run);
      zero_run = 0;
      detail::put_varint(tokens, q[0]);  // absolute DC
      int run = 0;
      for (int i = 1; i < 64; ++i) {
        if (q[static_cast<std::size_t>(i)] == 0) {
          ++run;
          continue;
        }
        tokens.push_back(static_cast<std::uint8_t>(run));
        detail::put_varint(tokens, q[static_cast<std::size_t>(i)]);
        run = 0;
      }
      tokens.push_back(63);  // EOB

      const Block rec = idct8x8(deq);
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          recon_residual[static_cast<std::size_t>(by + y) * static_cast<std::size_t>(width) +
                         static_cast<std::size_t>(bx + x)] =
              rec[static_cast<std::size_t>(y * kBlock + x)];
        }
      }
    }
  }
  if (zero_run > 0) detail::put_varint(tokens, zero_run);
}

std::vector<float> decode_residual_blocks(const std::vector<std::uint8_t>& tokens, int width,
                                          int height, const std::vector<int>& quant) {
  const auto& zz = zigzag_order();
  std::vector<float> residual(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
                              0.0f);
  const int blocks_x = width / kBlock;
  const int total_blocks = blocks_x * (height / kBlock);
  std::size_t pos = 0;
  int block_idx = 0;
  while (block_idx < total_blocks) {
    const std::int32_t skip = detail::get_varint(tokens, pos);
    if (skip < 0 || block_idx + skip > total_blocks) {
      throw std::runtime_error("mjpeg-delta: invalid block skip");
    }
    block_idx += skip;  // skipped blocks stay zero
    if (block_idx == total_blocks) break;

    std::array<int, 64> q{};
    q[0] = detail::get_varint(tokens, pos);  // absolute DC
    int i = 1;
    while (true) {
      if (pos >= tokens.size()) throw std::runtime_error("mjpeg-delta: truncated block");
      const std::uint8_t run = tokens[pos++];
      if (run == 63) break;
      i += run;
      if (i >= 64) throw std::runtime_error("mjpeg-delta: run past block end");
      q[static_cast<std::size_t>(i)] = detail::get_varint(tokens, pos);
      ++i;
    }
    Block coeffs{};
    for (int k = 0; k < 64; ++k) {
      const int rm = zz[static_cast<std::size_t>(k)];
      coeffs[static_cast<std::size_t>(rm)] =
          static_cast<float>(q[static_cast<std::size_t>(k)]) *
          static_cast<float>(quant[static_cast<std::size_t>(rm)]);
    }
    const Block rec = idct8x8(coeffs);
    const int by = (block_idx / blocks_x) * kBlock;
    const int bx = (block_idx % blocks_x) * kBlock;
    for (int y = 0; y < kBlock; ++y) {
      for (int x = 0; x < kBlock; ++x) {
        residual[static_cast<std::size_t>(by + y) * static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(bx + x)] =
            rec[static_cast<std::size_t>(y * kBlock + x)];
      }
    }
    ++block_idx;
  }
  return residual;
}

std::uint8_t clamp_pixel(double v) {
  return static_cast<std::uint8_t>(std::clamp(static_cast<int>(std::lround(v)), 0, 255));
}

}  // namespace

// ---- Encoder -----------------------------------------------------------------

MjpegDeltaEncoder::MjpegDeltaEncoder(int quality, int key_interval)
    : intra_(quality), key_interval_(key_interval) {
  IOB_EXPECTS(key_interval_ >= 1, "key interval must be at least 1");
}

void MjpegDeltaEncoder::reset() {
  have_ref_ = false;
  since_key_ = 0;
}

DeltaEncodedFrame MjpegDeltaEncoder::encode_next(const GrayFrame& frame) {
  IOB_EXPECTS(frame.width % kBlock == 0 && frame.height % kBlock == 0,
              "frame dims must be multiples of 8");
  DeltaEncodedFrame out;
  out.width = frame.width;
  out.height = frame.height;
  out.quality = intra_.quality();

  const bool key = !have_ref_ || since_key_ >= key_interval_ ||
                   (have_ref_ && (reference_.width != frame.width ||
                                  reference_.height != frame.height));
  if (key) {
    const MjpegEncoded enc = intra_.encode(frame);
    out.key = true;
    out.payload = enc.payload;
    reference_ = intra_.decode(enc);  // closed loop: track the decoder
    have_ref_ = true;
    since_key_ = 1;
    return out;
  }

  // Delta frame: residual against the reconstruction the decoder holds.
  std::vector<float> residual(frame.pixels.size());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    residual[i] = static_cast<float>(frame.pixels[i]) -
                  static_cast<float>(reference_.pixels[i]);
  }
  std::vector<std::uint8_t> tokens;
  std::vector<float> recon_residual;
  encode_residual_blocks(residual, frame.width, frame.height, intra_.quant_matrix(), tokens,
                         recon_residual);
  out.key = false;
  // Entropy stage is optional: for near-static frames the 260 B Huffman
  // table header outweighs the coding gain, so ship raw tokens instead.
  // First payload byte selects the mode (0 = raw, 1 = Huffman-wrapped).
  const std::vector<std::uint8_t> wrapped = detail::huffman_wrap(tokens);
  if (wrapped.size() < tokens.size()) {
    out.payload.push_back(1);
    out.payload.insert(out.payload.end(), wrapped.begin(), wrapped.end());
  } else {
    out.payload.push_back(0);
    out.payload.insert(out.payload.end(), tokens.begin(), tokens.end());
  }

  for (std::size_t i = 0; i < reference_.pixels.size(); ++i) {
    reference_.pixels[i] =
        clamp_pixel(static_cast<double>(reference_.pixels[i]) + recon_residual[i]);
  }
  ++since_key_;
  return out;
}

// ---- Decoder -----------------------------------------------------------------

MjpegDeltaDecoder::MjpegDeltaDecoder(int quality) : intra_(quality) {}

void MjpegDeltaDecoder::reset() { have_ref_ = false; }

GrayFrame MjpegDeltaDecoder::decode_next(const DeltaEncodedFrame& encoded) {
  if (encoded.key) {
    MjpegEncoded intra;
    intra.width = encoded.width;
    intra.height = encoded.height;
    intra.quality = encoded.quality;
    intra.payload = encoded.payload;
    reference_ = intra_.decode(intra);
    have_ref_ = true;
    return reference_;
  }

  IOB_EXPECTS(have_ref_, "delta frame before any key frame");
  IOB_EXPECTS(encoded.width == reference_.width && encoded.height == reference_.height,
              "delta frame dimension mismatch");
  IOB_EXPECTS(!encoded.payload.empty(), "empty delta payload");
  const std::vector<std::uint8_t> body(encoded.payload.begin() + 1, encoded.payload.end());
  const auto tokens = encoded.payload[0] == 1 ? detail::huffman_unwrap(body) : body;
  const auto residual =
      decode_residual_blocks(tokens, encoded.width, encoded.height, intra_.quant_matrix());
  for (std::size_t i = 0; i < reference_.pixels.size(); ++i) {
    reference_.pixels[i] =
        clamp_pixel(static_cast<double>(reference_.pixels[i]) + residual[i]);
  }
  return reference_;
}

}  // namespace iob::isa
