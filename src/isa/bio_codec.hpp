#pragma once
/// \file bio_codec.hpp
/// Lossless biopotential codec: delta + zig-zag + varint + optional Huffman.
/// ECG/EMG/PPG samples are strongly correlated sample-to-sample, so first
/// differences concentrate near zero and varint-pack tightly — a few lines
/// of ISA that typically halve (or better) a patch node's Wi-R traffic.

#include <cstdint>
#include <vector>

namespace iob::isa {

struct BioEncoded {
  std::vector<std::uint8_t> payload;
  std::size_t sample_count = 0;
  bool huffman = false;

  [[nodiscard]] std::size_t size_bytes() const { return payload.size() + 5; /* header */ }
};

class BioCodec {
 public:
  /// \param use_huffman add an entropy stage on the varint bytes (worth it
  ///        for streams longer than ~1 kB; table overhead otherwise).
  explicit BioCodec(bool use_huffman = false) : use_huffman_(use_huffman) {}

  [[nodiscard]] BioEncoded encode(const std::vector<std::int16_t>& samples) const;
  [[nodiscard]] std::vector<std::int16_t> decode(const BioEncoded& encoded) const;

  [[nodiscard]] double compression_ratio(const std::vector<std::int16_t>& samples) const;

 private:
  bool use_huffman_;
};

}  // namespace iob::isa
