#include "isa/mjpeg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/expect.hpp"
#include "isa/dct.hpp"
#include "isa/huffman.hpp"

namespace iob::isa {

namespace {

/// Standard JPEG luminance quantization matrix (Annex K), row-major.
constexpr std::array<int, 64> kJpegLuminance = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::uint8_t kEobRun = 63;  ///< run byte value marking end-of-block

/// Signed -> unsigned zig-zag mapping for varints.
std::uint32_t zz_encode(std::int32_t v) {
  return (static_cast<std::uint32_t>(v) << 1) ^ static_cast<std::uint32_t>(v >> 31);
}
std::int32_t zz_decode(std::uint32_t u) {
  return static_cast<std::int32_t>((u >> 1) ^ (~(u & 1) + 1));
}

void put_varint(std::vector<std::uint8_t>& out, std::int32_t v) {
  std::uint32_t u = zz_encode(v);
  while (u >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(u | 0x80));
    u >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(u));
}

std::int32_t get_varint(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  std::uint32_t u = 0;
  unsigned shift = 0;
  while (true) {
    if (pos >= in.size()) throw std::runtime_error("mjpeg: truncated varint");
    const std::uint8_t b = in[pos++];
    u |= static_cast<std::uint32_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
    if (shift > 28) throw std::runtime_error("mjpeg: varint overflow");
  }
  return zz_decode(u);
}

}  // namespace

MjpegCodec::MjpegCodec(int quality) : quality_(quality), quant_(64) {
  IOB_EXPECTS(quality >= 1 && quality <= 100, "quality must be in [1, 100]");
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  for (int i = 0; i < 64; ++i) {
    quant_[static_cast<std::size_t>(i)] =
        std::clamp((kJpegLuminance[static_cast<std::size_t>(i)] * scale + 50) / 100, 1, 255);
  }
}

MjpegEncoded MjpegCodec::encode(const GrayFrame& frame) const {
  IOB_EXPECTS(frame.width > 0 && frame.height > 0, "frame must be non-empty");
  IOB_EXPECTS(frame.width % kBlock == 0 && frame.height % kBlock == 0,
              "frame dims must be multiples of 8");
  IOB_EXPECTS(frame.pixels.size() ==
                  static_cast<std::size_t>(frame.width) * static_cast<std::size_t>(frame.height),
              "pixel buffer size mismatch");

  const auto& zz = zigzag_order();
  std::vector<std::uint8_t> tokens;
  tokens.reserve(frame.pixels.size() / 4);

  int prev_dc = 0;
  for (int by = 0; by < frame.height; by += kBlock) {
    for (int bx = 0; bx < frame.width; bx += kBlock) {
      Block spatial{};
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          const std::size_t idx =
              static_cast<std::size_t>(by + y) * static_cast<std::size_t>(frame.width) +
              static_cast<std::size_t>(bx + x);
          spatial[static_cast<std::size_t>(y * kBlock + x)] =
              static_cast<float>(frame.pixels[idx]) - 128.0f;
        }
      }
      const Block coeffs = dct8x8(spatial);

      std::array<int, 64> q{};
      for (int i = 0; i < 64; ++i) {
        q[static_cast<std::size_t>(i)] = static_cast<int>(std::lround(
            coeffs[static_cast<std::size_t>(zz[static_cast<std::size_t>(i)])] /
            static_cast<float>(quant_[static_cast<std::size_t>(zz[static_cast<std::size_t>(i)])])));
      }

      // DC delta.
      put_varint(tokens, q[0] - prev_dc);
      prev_dc = q[0];

      // AC run-length: (zero-run, value) pairs, EOB terminator.
      int run = 0;
      for (int i = 1; i < 64; ++i) {
        if (q[static_cast<std::size_t>(i)] == 0) {
          ++run;
          continue;
        }
        tokens.push_back(static_cast<std::uint8_t>(run));
        put_varint(tokens, q[static_cast<std::size_t>(i)]);
        run = 0;
      }
      tokens.push_back(kEobRun);
    }
  }

  // Entropy stage: canonical Huffman over token bytes.
  std::vector<std::uint64_t> freqs(256, 0);
  for (const auto b : tokens) ++freqs[b];
  const HuffmanCodec codec = HuffmanCodec::from_frequencies(freqs);

  MjpegEncoded out;
  out.width = frame.width;
  out.height = frame.height;
  out.quality = quality_;
  out.payload = codec.code_lengths();  // 256 bytes of table
  // 4-byte token count.
  for (int i = 0; i < 4; ++i) {
    out.payload.push_back(static_cast<std::uint8_t>((tokens.size() >> (8 * i)) & 0xff));
  }
  BitWriter bw;
  for (const auto b : tokens) codec.encode(b, bw);
  const auto bits = bw.finish();
  out.payload.insert(out.payload.end(), bits.begin(), bits.end());
  return out;
}

GrayFrame MjpegCodec::decode(const MjpegEncoded& encoded) const {
  IOB_EXPECTS(encoded.width % kBlock == 0 && encoded.height % kBlock == 0,
              "encoded dims must be multiples of 8");
  IOB_EXPECTS(encoded.payload.size() >= 260, "payload too short");

  std::vector<std::uint8_t> lengths(encoded.payload.begin(), encoded.payload.begin() + 256);
  const HuffmanCodec codec = HuffmanCodec::from_code_lengths(std::move(lengths));
  std::size_t token_count = 0;
  for (int i = 0; i < 4; ++i) {
    token_count |= static_cast<std::size_t>(encoded.payload[256 + static_cast<std::size_t>(i)])
                   << (8 * i);
  }
  const std::vector<std::uint8_t> bits(encoded.payload.begin() + 260, encoded.payload.end());
  BitReader br(bits);
  std::vector<std::uint8_t> tokens(token_count);
  for (auto& t : tokens) t = static_cast<std::uint8_t>(codec.decode(br));

  const auto& zz = zigzag_order();
  GrayFrame frame;
  frame.width = encoded.width;
  frame.height = encoded.height;
  frame.pixels.assign(
      static_cast<std::size_t>(frame.width) * static_cast<std::size_t>(frame.height), 0);

  std::size_t pos = 0;
  int prev_dc = 0;
  for (int by = 0; by < frame.height; by += kBlock) {
    for (int bx = 0; bx < frame.width; bx += kBlock) {
      std::array<int, 64> q{};
      q[0] = prev_dc + get_varint(tokens, pos);
      prev_dc = q[0];
      int i = 1;
      while (true) {
        if (pos >= tokens.size()) throw std::runtime_error("mjpeg: truncated block");
        const std::uint8_t run = tokens[pos++];
        if (run == kEobRun) break;
        i += run;
        if (i >= 64) throw std::runtime_error("mjpeg: run past block end");
        q[static_cast<std::size_t>(i)] = get_varint(tokens, pos);
        ++i;
      }

      Block coeffs{};
      for (int k = 0; k < 64; ++k) {
        coeffs[static_cast<std::size_t>(zz[static_cast<std::size_t>(k)])] =
            static_cast<float>(q[static_cast<std::size_t>(k)]) *
            static_cast<float>(quant_[static_cast<std::size_t>(zz[static_cast<std::size_t>(k)])]);
      }
      const Block spatial = idct8x8(coeffs);
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          const float v = spatial[static_cast<std::size_t>(y * kBlock + x)] + 128.0f;
          const std::size_t idx =
              static_cast<std::size_t>(by + y) * static_cast<std::size_t>(frame.width) +
              static_cast<std::size_t>(bx + x);
          frame.pixels[idx] =
              static_cast<std::uint8_t>(std::clamp(static_cast<int>(std::lround(v)), 0, 255));
        }
      }
    }
  }
  return frame;
}

double MjpegCodec::compression_ratio(const GrayFrame& frame) const {
  const MjpegEncoded e = encode(frame);
  return static_cast<double>(frame.size_bytes()) / static_cast<double>(e.size_bytes());
}

}  // namespace iob::isa
