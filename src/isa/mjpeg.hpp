#pragma once
/// \file mjpeg.hpp
/// MJPEG-style intra-frame video codec — the In-Sensor-Analytics example the
/// paper names for video nodes (Sec. V: "low power in-sensor analytics (ISA)
/// or data compression (example MJPEG compression for video)").
///
/// Pipeline per 8x8 block: level shift -> DCT -> quantization (JPEG
/// luminance matrix scaled by quality) -> zig-zag -> DC delta + AC
/// zero-run-length -> signed varint serialization -> canonical Huffman over
/// the byte stream. Each frame is self-contained (intra-only, like MJPEG),
/// which is the right trade for a leaf node with no frame memory.

#include <cstdint>
#include <vector>

namespace iob::isa {

/// 8-bit grayscale (luma) frame; dimensions must be multiples of 8.
struct GrayFrame {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> pixels;  ///< row-major, width*height

  [[nodiscard]] std::size_t size_bytes() const { return pixels.size(); }
};

struct MjpegEncoded {
  int width = 0;
  int height = 0;
  int quality = 0;
  std::vector<std::uint8_t> payload;  ///< Huffman table + entropy-coded data

  [[nodiscard]] std::size_t size_bytes() const { return payload.size() + 8; /* header */ }
};

class MjpegCodec {
 public:
  /// \param quality 1 (coarsest) .. 100 (finest); 50 = the standard JPEG
  ///        luminance matrix.
  explicit MjpegCodec(int quality = 50);

  [[nodiscard]] MjpegEncoded encode(const GrayFrame& frame) const;
  [[nodiscard]] GrayFrame decode(const MjpegEncoded& encoded) const;

  /// Compression ratio achieved on a frame (raw bytes / encoded bytes).
  [[nodiscard]] double compression_ratio(const GrayFrame& frame) const;

  [[nodiscard]] int quality() const { return quality_; }

  /// The scaled quantization matrix in row-major order.
  [[nodiscard]] const std::vector<int>& quant_matrix() const { return quant_; }

 private:
  int quality_;
  std::vector<int> quant_;
};

}  // namespace iob::isa
