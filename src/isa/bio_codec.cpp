#include "isa/bio_codec.hpp"

#include <stdexcept>

#include "common/expect.hpp"
#include "isa/bitstream.hpp"
#include "isa/huffman.hpp"

namespace iob::isa {

namespace {

std::uint32_t zz_encode(std::int32_t v) {
  return (static_cast<std::uint32_t>(v) << 1) ^ static_cast<std::uint32_t>(v >> 31);
}
std::int32_t zz_decode(std::uint32_t u) {
  return static_cast<std::int32_t>((u >> 1) ^ (~(u & 1) + 1));
}

void put_varint(std::vector<std::uint8_t>& out, std::int32_t v) {
  std::uint32_t u = zz_encode(v);
  while (u >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(u | 0x80));
    u >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(u));
}

std::int32_t get_varint(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  std::uint32_t u = 0;
  unsigned shift = 0;
  while (true) {
    if (pos >= in.size()) throw std::runtime_error("bio codec: truncated varint");
    const std::uint8_t b = in[pos++];
    u |= static_cast<std::uint32_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
    if (shift > 28) throw std::runtime_error("bio codec: varint overflow");
  }
  return zz_decode(u);
}

}  // namespace

BioEncoded BioCodec::encode(const std::vector<std::int16_t>& samples) const {
  BioEncoded out;
  out.sample_count = samples.size();
  out.huffman = use_huffman_;
  if (samples.empty()) return out;

  std::vector<std::uint8_t> varints;
  varints.reserve(samples.size());
  std::int32_t prev = 0;
  for (const std::int16_t s : samples) {
    put_varint(varints, static_cast<std::int32_t>(s) - prev);
    prev = s;
  }

  if (!use_huffman_) {
    out.payload = std::move(varints);
    return out;
  }

  std::vector<std::uint64_t> freqs(256, 0);
  for (const auto b : varints) ++freqs[b];
  const HuffmanCodec codec = HuffmanCodec::from_frequencies(freqs);
  out.payload = codec.code_lengths();
  for (int i = 0; i < 4; ++i) {
    out.payload.push_back(static_cast<std::uint8_t>((varints.size() >> (8 * i)) & 0xff));
  }
  BitWriter bw;
  for (const auto b : varints) codec.encode(b, bw);
  const auto bits = bw.finish();
  out.payload.insert(out.payload.end(), bits.begin(), bits.end());
  return out;
}

std::vector<std::int16_t> BioCodec::decode(const BioEncoded& encoded) const {
  std::vector<std::int16_t> samples;
  samples.reserve(encoded.sample_count);
  if (encoded.sample_count == 0) return samples;

  std::vector<std::uint8_t> varints;
  if (!encoded.huffman) {
    varints = encoded.payload;
  } else {
    IOB_EXPECTS(encoded.payload.size() >= 260, "payload too short for Huffman header");
    std::vector<std::uint8_t> lengths(encoded.payload.begin(), encoded.payload.begin() + 256);
    const HuffmanCodec codec = HuffmanCodec::from_code_lengths(std::move(lengths));
    std::size_t count = 0;
    for (int i = 0; i < 4; ++i) {
      count |= static_cast<std::size_t>(encoded.payload[256 + static_cast<std::size_t>(i)])
               << (8 * i);
    }
    const std::vector<std::uint8_t> bits(encoded.payload.begin() + 260, encoded.payload.end());
    BitReader br(bits);
    varints.resize(count);
    for (auto& v : varints) v = static_cast<std::uint8_t>(codec.decode(br));
  }

  std::size_t pos = 0;
  std::int32_t prev = 0;
  for (std::size_t i = 0; i < encoded.sample_count; ++i) {
    prev += get_varint(varints, pos);
    samples.push_back(static_cast<std::int16_t>(prev));
  }
  return samples;
}

double BioCodec::compression_ratio(const std::vector<std::int16_t>& samples) const {
  IOB_EXPECTS(!samples.empty(), "signal must be non-empty");
  const BioEncoded e = encode(samples);
  return static_cast<double>(samples.size() * 2) / static_cast<double>(e.size_bytes());
}

}  // namespace iob::isa
