#include "isa/adpcm.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/expect.hpp"

namespace iob::isa {

namespace {

constexpr std::array<int, 89> kStepTable = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,    19,    21,    23,
    25,    28,    31,    34,    37,    41,    45,    50,    55,    60,    66,    73,    80,
    88,    97,    107,   118,   130,   143,   157,   173,   190,   209,   230,   253,   279,
    307,   337,   371,   408,   449,   494,   544,   598,   658,   724,   796,   876,   963,
    1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,  3024,  3327,
    3660,  4026,  4428,  4871,  5358,  5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487,
    12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

constexpr std::array<int, 16> kIndexTable = {-1, -1, -1, -1, 2, 4, 6, 8,
                                             -1, -1, -1, -1, 2, 4, 6, 8};

/// Encode one sample against the predictor state; returns the nibble.
std::uint8_t encode_sample(int sample, int& predictor, int& index) {
  const int step = kStepTable[static_cast<std::size_t>(index)];
  int diff = sample - predictor;
  std::uint8_t nibble = 0;
  if (diff < 0) {
    nibble = 8;
    diff = -diff;
  }
  int temp_step = step;
  if (diff >= temp_step) {
    nibble |= 4;
    diff -= temp_step;
  }
  temp_step >>= 1;
  if (diff >= temp_step) {
    nibble |= 2;
    diff -= temp_step;
  }
  temp_step >>= 1;
  if (diff >= temp_step) nibble |= 1;

  // Reconstruct exactly as the decoder will.
  int diffq = step >> 3;
  if (nibble & 4) diffq += step;
  if (nibble & 2) diffq += step >> 1;
  if (nibble & 1) diffq += step >> 2;
  predictor += (nibble & 8) ? -diffq : diffq;
  predictor = std::clamp(predictor, -32768, 32767);

  index = std::clamp(index + kIndexTable[nibble], 0, 88);
  return nibble;
}

int decode_sample(std::uint8_t nibble, int& predictor, int& index) {
  const int step = kStepTable[static_cast<std::size_t>(index)];
  int diffq = step >> 3;
  if (nibble & 4) diffq += step;
  if (nibble & 2) diffq += step >> 1;
  if (nibble & 1) diffq += step >> 2;
  predictor += (nibble & 8) ? -diffq : diffq;
  predictor = std::clamp(predictor, -32768, 32767);
  index = std::clamp(index + kIndexTable[nibble], 0, 88);
  return predictor;
}

}  // namespace

AdpcmEncoded AdpcmCodec::encode(const std::vector<std::int16_t>& pcm) {
  AdpcmEncoded out;
  out.sample_count = pcm.size();
  if (pcm.empty()) return out;

  int predictor = pcm[0];
  int index = 0;
  out.predictor = pcm[0];
  out.step_index = 0;

  out.nibbles.reserve((pcm.size() + 1) / 2);
  std::uint8_t pending = 0;
  bool have_pending = false;
  // First sample is carried in the header (predictor); encode from the 2nd.
  for (std::size_t i = 1; i < pcm.size(); ++i) {
    const std::uint8_t nib = encode_sample(pcm[i], predictor, index);
    if (!have_pending) {
      pending = nib;
      have_pending = true;
    } else {
      out.nibbles.push_back(static_cast<std::uint8_t>(pending | (nib << 4)));
      have_pending = false;
    }
  }
  if (have_pending) out.nibbles.push_back(pending);
  return out;
}

std::vector<std::int16_t> AdpcmCodec::decode(const AdpcmEncoded& encoded) {
  std::vector<std::int16_t> pcm;
  pcm.reserve(encoded.sample_count);
  if (encoded.sample_count == 0) return pcm;

  int predictor = encoded.predictor;
  int index = encoded.step_index;
  pcm.push_back(encoded.predictor);

  std::size_t produced = 1;
  for (const std::uint8_t byte : encoded.nibbles) {
    for (int half = 0; half < 2 && produced < encoded.sample_count; ++half, ++produced) {
      const std::uint8_t nib = half == 0 ? (byte & 0x0f) : (byte >> 4);
      pcm.push_back(static_cast<std::int16_t>(decode_sample(nib, predictor, index)));
    }
  }
  IOB_ENSURES(pcm.size() == encoded.sample_count, "adpcm decode produced wrong sample count");
  return pcm;
}

double AdpcmCodec::reconstruction_snr_db(const std::vector<std::int16_t>& pcm) {
  IOB_EXPECTS(!pcm.empty(), "signal must be non-empty");
  const auto decoded = decode(encode(pcm));
  double sig = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < pcm.size(); ++i) {
    const double s = pcm[i];
    const double e = s - decoded[i];
    sig += s * s;
    noise += e * e;
  }
  if (noise == 0.0) return 200.0;  // bit-exact
  return 10.0 * std::log10(sig / noise);
}

}  // namespace iob::isa
