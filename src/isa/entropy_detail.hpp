#pragma once
/// \file entropy_detail.hpp
/// Shared entropy-stage helpers for the block video codecs: signed varints
/// over a byte token stream, and the Huffman wrap/unwrap framing
/// (256-byte canonical code-length table + 4-byte token count + bitstream).
/// Internal to isa/; not part of the public API.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "isa/huffman.hpp"

namespace iob::isa::detail {

inline std::uint32_t zz_encode_s32(std::int32_t v) {
  return (static_cast<std::uint32_t>(v) << 1) ^ static_cast<std::uint32_t>(v >> 31);
}

inline std::int32_t zz_decode_s32(std::uint32_t u) {
  return static_cast<std::int32_t>((u >> 1) ^ (~(u & 1) + 1));
}

inline void put_varint(std::vector<std::uint8_t>& out, std::int32_t v) {
  std::uint32_t u = zz_encode_s32(v);
  while (u >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(u | 0x80));
    u >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(u));
}

inline std::int32_t get_varint(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  std::uint32_t u = 0;
  unsigned shift = 0;
  while (true) {
    if (pos >= in.size()) throw std::runtime_error("entropy: truncated varint");
    const std::uint8_t b = in[pos++];
    u |= static_cast<std::uint32_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
    if (shift > 28) throw std::runtime_error("entropy: varint overflow");
  }
  return zz_decode_s32(u);
}

/// Huffman-wrap a token byte stream: [256 B code lengths][4 B count][bits].
inline std::vector<std::uint8_t> huffman_wrap(const std::vector<std::uint8_t>& tokens) {
  std::vector<std::uint64_t> freqs(256, 0);
  for (const auto b : tokens) ++freqs[b];
  if (tokens.empty()) freqs[0] = 1;  // degenerate but valid table
  const HuffmanCodec codec = HuffmanCodec::from_frequencies(freqs);

  std::vector<std::uint8_t> out = codec.code_lengths();
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((tokens.size() >> (8 * i)) & 0xff));
  }
  BitWriter bw;
  for (const auto b : tokens) codec.encode(b, bw);
  const auto bits = bw.finish();
  out.insert(out.end(), bits.begin(), bits.end());
  return out;
}

/// Inverse of huffman_wrap.
inline std::vector<std::uint8_t> huffman_unwrap(const std::vector<std::uint8_t>& payload) {
  if (payload.size() < 260) throw std::runtime_error("entropy: payload too short");
  std::vector<std::uint8_t> lengths(payload.begin(), payload.begin() + 256);
  const HuffmanCodec codec = HuffmanCodec::from_code_lengths(std::move(lengths));
  std::size_t count = 0;
  for (int i = 0; i < 4; ++i) {
    count |= static_cast<std::size_t>(payload[256 + static_cast<std::size_t>(i)]) << (8 * i);
  }
  const std::vector<std::uint8_t> bits(payload.begin() + 260, payload.end());
  BitReader br(bits);
  std::vector<std::uint8_t> tokens(count);
  for (auto& t : tokens) t = static_cast<std::uint8_t>(codec.decode(br));
  return tokens;
}

}  // namespace iob::isa::detail
