#include "isa/dct.hpp"

#include <cmath>

namespace iob::isa {

namespace {

/// Cosine basis c[k][n] = s(k) * cos(pi*(2n+1)*k/16) for the 8-point DCT.
const std::array<std::array<float, kBlock>, kBlock>& basis8() {
  static const auto table = [] {
    std::array<std::array<float, kBlock>, kBlock> t{};
    for (int k = 0; k < kBlock; ++k) {
      const double s = k == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock);
      for (int n = 0; n < kBlock; ++n) {
        t[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)] =
            static_cast<float>(s * std::cos(M_PI * (2.0 * n + 1.0) * k / (2.0 * kBlock)));
      }
    }
    return t;
  }();
  return table;
}

}  // namespace

Block dct8x8(const Block& spatial) {
  const auto& c = basis8();
  // Rows then columns (separable).
  Block tmp{}, out{};
  for (int y = 0; y < kBlock; ++y) {
    for (int k = 0; k < kBlock; ++k) {
      float acc = 0.0f;
      for (int x = 0; x < kBlock; ++x) {
        acc += c[static_cast<std::size_t>(k)][static_cast<std::size_t>(x)] *
               spatial[static_cast<std::size_t>(y * kBlock + x)];
      }
      tmp[static_cast<std::size_t>(y * kBlock + k)] = acc;
    }
  }
  for (int x = 0; x < kBlock; ++x) {
    for (int k = 0; k < kBlock; ++k) {
      float acc = 0.0f;
      for (int y = 0; y < kBlock; ++y) {
        acc += c[static_cast<std::size_t>(k)][static_cast<std::size_t>(y)] *
               tmp[static_cast<std::size_t>(y * kBlock + x)];
      }
      out[static_cast<std::size_t>(k * kBlock + x)] = acc;
    }
  }
  return out;
}

Block idct8x8(const Block& coeffs) {
  const auto& c = basis8();
  Block tmp{}, out{};
  // Inverse columns then rows.
  for (int x = 0; x < kBlock; ++x) {
    for (int n = 0; n < kBlock; ++n) {
      float acc = 0.0f;
      for (int k = 0; k < kBlock; ++k) {
        acc += c[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)] *
               coeffs[static_cast<std::size_t>(k * kBlock + x)];
      }
      tmp[static_cast<std::size_t>(n * kBlock + x)] = acc;
    }
  }
  for (int y = 0; y < kBlock; ++y) {
    for (int n = 0; n < kBlock; ++n) {
      float acc = 0.0f;
      for (int k = 0; k < kBlock; ++k) {
        acc += c[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)] *
               tmp[static_cast<std::size_t>(y * kBlock + k)];
      }
      out[static_cast<std::size_t>(y * kBlock + n)] = acc;
    }
  }
  return out;
}

const std::array<int, kBlock * kBlock>& zigzag_order() {
  static const auto table = [] {
    std::array<int, kBlock * kBlock> t{};
    int idx = 0;
    for (int s = 0; s < 2 * kBlock - 1; ++s) {
      if (s % 2 == 0) {
        // up-right diagonal
        for (int y = std::min(s, kBlock - 1); y >= 0 && s - y < kBlock; --y) {
          t[static_cast<std::size_t>(idx++)] = y * kBlock + (s - y);
        }
      } else {
        for (int x = std::min(s, kBlock - 1); x >= 0 && s - x < kBlock; --x) {
          t[static_cast<std::size_t>(idx++)] = (s - x) * kBlock + x;
        }
      }
    }
    return t;
  }();
  return table;
}

std::vector<float> dct2(const std::vector<float>& x) {
  const std::size_t n = x.size();
  std::vector<float> out(n, 0.0f);
  if (n == 0) return out;
  for (std::size_t k = 0; k < n; ++k) {
    const double s = k == 0 ? std::sqrt(1.0 / static_cast<double>(n))
                            : std::sqrt(2.0 / static_cast<double>(n));
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += x[i] * std::cos(M_PI * (2.0 * static_cast<double>(i) + 1.0) * static_cast<double>(k) /
                             (2.0 * static_cast<double>(n)));
    }
    out[k] = static_cast<float>(s * acc);
  }
  return out;
}

}  // namespace iob::isa
