#include "isa/features.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "isa/dct.hpp"
#include "isa/fft.hpp"

namespace iob::isa {

WindowFeatures time_features(const std::vector<float>& window) {
  IOB_EXPECTS(!window.empty(), "window must be non-empty");
  WindowFeatures f;
  double acc = 0.0;
  std::size_t crossings = 0;
  for (std::size_t i = 0; i < window.size(); ++i) {
    acc += static_cast<double>(window[i]) * window[i];
    f.peak = std::max(f.peak, std::fabs(window[i]));
    if (i > 0 && ((window[i - 1] < 0.0f) != (window[i] < 0.0f))) ++crossings;
  }
  f.rms = static_cast<float>(std::sqrt(acc / static_cast<double>(window.size())));
  f.zero_cross_rate = static_cast<float>(crossings) / static_cast<float>(window.size());
  return f;
}

double hz_to_mel(double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); }
double mel_to_hz(double mel) { return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0); }

std::vector<float> log_mel_energies(const std::vector<float>& frame, const MelConfig& cfg) {
  IOB_EXPECTS(frame.size() == cfg.frame_len, "frame length mismatch");
  IOB_EXPECTS(cfg.n_mels >= 2, "need at least two mel bands");
  IOB_EXPECTS(cfg.fmax_hz > cfg.fmin_hz, "fmax must exceed fmin");

  // Hann window + magnitude spectrum.
  std::vector<float> windowed(frame.size());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const double w =
        0.5 - 0.5 * std::cos(2.0 * M_PI * static_cast<double>(i) /
                             static_cast<double>(frame.size() - 1));
    windowed[i] = static_cast<float>(frame[i] * w);
  }
  const auto mag = magnitude_spectrum(windowed);
  const std::size_t n_fft = (mag.size() - 1) * 2;
  const double bin_hz = cfg.sample_rate_hz / static_cast<double>(n_fft);

  // Triangular mel filterbank edges.
  const double mel_lo = hz_to_mel(cfg.fmin_hz), mel_hi = hz_to_mel(cfg.fmax_hz);
  std::vector<double> edges(cfg.n_mels + 2);
  for (std::size_t m = 0; m < edges.size(); ++m) {
    edges[m] = mel_to_hz(mel_lo + (mel_hi - mel_lo) * static_cast<double>(m) /
                                      static_cast<double>(cfg.n_mels + 1));
  }

  std::vector<float> energies(cfg.n_mels, 0.0f);
  for (std::size_t m = 0; m < cfg.n_mels; ++m) {
    const double left = edges[m], center = edges[m + 1], right = edges[m + 2];
    double acc = 0.0;
    for (std::size_t b = 0; b < mag.size(); ++b) {
      const double f = static_cast<double>(b) * bin_hz;
      double weight = 0.0;
      if (f > left && f < center) {
        weight = (f - left) / (center - left);
      } else if (f >= center && f < right) {
        weight = (right - f) / (right - center);
      }
      acc += weight * mag[b] * mag[b];
    }
    energies[m] = static_cast<float>(std::log(acc + 1e-10));
  }
  return energies;
}

std::vector<float> mfcc_frame(const std::vector<float>& frame, const MelConfig& cfg) {
  const auto mel = log_mel_energies(frame, cfg);
  const auto coeffs = dct2(mel);
  IOB_EXPECTS(cfg.n_mfcc <= coeffs.size(), "n_mfcc exceeds mel band count");
  return std::vector<float>(coeffs.begin(), coeffs.begin() + static_cast<long>(cfg.n_mfcc));
}

nn::Tensor mfcc_spectrogram(const std::vector<float>& signal, const MelConfig& cfg,
                            std::size_t n_frames) {
  IOB_EXPECTS(n_frames >= 1, "need at least one frame");
  const std::size_t needed = cfg.frame_len + (n_frames - 1) * cfg.hop;
  IOB_EXPECTS(signal.size() >= needed, "signal too short for requested frame count");

  nn::Tensor out(nn::Shape{static_cast<int>(n_frames), static_cast<int>(cfg.n_mfcc), 1});
  for (std::size_t t = 0; t < n_frames; ++t) {
    const std::vector<float> frame(signal.begin() + static_cast<long>(t * cfg.hop),
                                   signal.begin() + static_cast<long>(t * cfg.hop + cfg.frame_len));
    const auto coeffs = mfcc_frame(frame, cfg);
    for (std::size_t k = 0; k < cfg.n_mfcc; ++k) {
      out.at(static_cast<int>(t), static_cast<int>(k), 0) = coeffs[k];
    }
  }
  return out;
}

}  // namespace iob::isa
