#pragma once
/// \file features.hpp
/// Feature extractors — the "analytics" half of In-Sensor Analytics.
/// A leaf node that ships 10 MFCC coefficients per 32 ms audio frame sends
/// ~40x fewer bits than raw 16-bit PCM; a patch that ships beat features
/// instead of the ECG waveform sends ~100x fewer. These extractors produce
/// the actual model-zoo input tensors, so the ISA -> NN pipeline is real.

#include <vector>

#include "nn/tensor.hpp"

namespace iob::isa {

/// Windowed time-domain summary features.
struct WindowFeatures {
  float rms = 0.0f;
  float zero_cross_rate = 0.0f;  ///< crossings per sample, in [0, 1]
  float peak = 0.0f;
};

WindowFeatures time_features(const std::vector<float>& window);

/// Mel filterbank configuration for MFCC extraction.
struct MelConfig {
  double sample_rate_hz = 16000.0;
  std::size_t frame_len = 512;      ///< samples per analysis frame (pow2)
  std::size_t hop = 320;            ///< 20 ms at 16 kHz
  std::size_t n_mels = 40;
  std::size_t n_mfcc = 10;
  double fmin_hz = 20.0;
  double fmax_hz = 7600.0;
};

/// Log-mel filterbank energies for one frame of samples (frame_len long).
std::vector<float> log_mel_energies(const std::vector<float>& frame, const MelConfig& cfg);

/// MFCCs for one frame (DCT-II of the log-mel energies, first n_mfcc).
std::vector<float> mfcc_frame(const std::vector<float>& frame, const MelConfig& cfg);

/// Full MFCC spectrogram tensor [n_frames, n_mfcc] over a signal — shaped
/// for `nn::make_kws_dscnn` when n_frames = 49, n_mfcc = 10.
nn::Tensor mfcc_spectrogram(const std::vector<float>& signal, const MelConfig& cfg,
                            std::size_t n_frames);

/// Mel scale conversions (HTK formula).
double hz_to_mel(double hz);
double mel_to_hz(double mel);

}  // namespace iob::isa
