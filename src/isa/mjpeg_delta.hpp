#pragma once
/// \file mjpeg_delta.hpp
/// Inter-frame (delta) extension of the MJPEG-style ISA codec: key frames
/// are plain intra MJPEG; delta frames DCT-code the residual against the
/// decoder's previous reconstruction (closed-loop, no drift). On the slow-
/// moving first-person scenes camera leaf nodes produce, delta frames cut
/// traffic another ~2-5x over intra-only MJPEG at equal quality — a natural
/// "future extension" of the paper's per-frame-MJPEG ISA suggestion.

#include <cstdint>
#include <vector>

#include "isa/mjpeg.hpp"

namespace iob::isa {

struct DeltaEncodedFrame {
  bool key = false;
  int width = 0;
  int height = 0;
  int quality = 0;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t size_bytes() const { return payload.size() + 9; /* header */ }
};

class MjpegDeltaEncoder {
 public:
  /// \param quality 1..100 (as MjpegCodec)
  /// \param key_interval force an intra (key) frame every N frames (>= 1)
  explicit MjpegDeltaEncoder(int quality = 50, int key_interval = 30);

  /// Encode the next frame of the stream (stateful).
  DeltaEncodedFrame encode_next(const GrayFrame& frame);

  /// Restart the stream (next frame becomes a key frame).
  void reset();

 private:
  MjpegCodec intra_;
  int key_interval_;
  int since_key_ = 0;
  bool have_ref_ = false;
  GrayFrame reference_;  ///< decoder-side reconstruction (closed loop)
};

class MjpegDeltaDecoder {
 public:
  explicit MjpegDeltaDecoder(int quality = 50);

  /// Decode the next frame of the stream (stateful). Throws on a delta
  /// frame arriving before any key frame.
  GrayFrame decode_next(const DeltaEncodedFrame& encoded);

  void reset();

 private:
  MjpegCodec intra_;
  bool have_ref_ = false;
  GrayFrame reference_;
};

}  // namespace iob::isa
