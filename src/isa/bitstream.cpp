#include "isa/bitstream.hpp"

#include <stdexcept>

#include "common/expect.hpp"

namespace iob::isa {

void BitWriter::write(std::uint64_t bits, unsigned count) {
  IOB_EXPECTS(count <= 64, "cannot write more than 64 bits at once");
  for (unsigned i = count; i-- > 0;) {
    const unsigned bit = static_cast<unsigned>((bits >> i) & 1u);
    current_ = static_cast<std::uint8_t>((current_ << 1) | bit);
    if (++filled_ == 8) {
      bytes_.push_back(current_);
      current_ = 0;
      filled_ = 0;
    }
  }
  bit_count_ += count;
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (filled_ > 0) {
    current_ = static_cast<std::uint8_t>(current_ << (8 - filled_));
    bytes_.push_back(current_);
    current_ = 0;
    filled_ = 0;
  }
  return std::move(bytes_);
}

BitReader::BitReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

std::uint64_t BitReader::read(unsigned count) {
  IOB_EXPECTS(count <= 64, "cannot read more than 64 bits at once");
  std::uint64_t v = 0;
  for (unsigned i = 0; i < count; ++i) v = (v << 1) | read_bit();
  return v;
}

unsigned BitReader::read_bit() {
  const std::size_t byte_idx = pos_bits_ / 8;
  if (byte_idx >= bytes_.size()) throw std::out_of_range("bitstream exhausted");
  const unsigned shift = 7 - static_cast<unsigned>(pos_bits_ % 8);
  ++pos_bits_;
  return (bytes_[byte_idx] >> shift) & 1u;
}

std::size_t BitReader::bits_remaining() const { return bytes_.size() * 8 - pos_bits_; }

}  // namespace iob::isa
