#pragma once
/// \file metrics.hpp
/// Rate/distortion metrics for the ISA codecs.

#include <cstdint>
#include <vector>

#include "isa/mjpeg.hpp"

namespace iob::isa {

/// Peak signal-to-noise ratio (dB) between two 8-bit frames of equal size.
double psnr_db(const GrayFrame& a, const GrayFrame& b);

/// SNR (dB) between a reference and a reconstruction.
double snr_db(const std::vector<float>& reference, const std::vector<float>& reconstruction);

/// raw_bytes / coded_bytes.
double compression_ratio(std::size_t raw_bytes, std::size_t coded_bytes);

}  // namespace iob::isa
