#pragma once
/// \file adpcm.hpp
/// IMA ADPCM audio codec (16-bit PCM <-> 4 bits/sample, fixed 4:1) — the
/// ISA stage for the paper's audio-input wearable AI class (pins, pendants,
/// pocket assistants; Sec. II-B). A leaf microphone node running ADPCM cuts
/// its Wi-R traffic 4x for ~zero compute, shifting its operating point left
/// along the Fig. 3 battery-life curve.

#include <cstdint>
#include <vector>

namespace iob::isa {

struct AdpcmEncoded {
  std::vector<std::uint8_t> nibbles;  ///< two samples per byte, low nibble first
  std::int16_t predictor = 0;         ///< initial decoder state
  std::uint8_t step_index = 0;
  std::size_t sample_count = 0;

  [[nodiscard]] std::size_t size_bytes() const { return nibbles.size() + 4; /* header */ }
};

class AdpcmCodec {
 public:
  [[nodiscard]] static AdpcmEncoded encode(const std::vector<std::int16_t>& pcm);
  [[nodiscard]] static std::vector<std::int16_t> decode(const AdpcmEncoded& encoded);

  /// Reconstruction SNR (dB) over a signal (encode -> decode -> compare).
  [[nodiscard]] static double reconstruction_snr_db(const std::vector<std::int16_t>& pcm);
};

}  // namespace iob::isa
