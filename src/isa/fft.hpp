#pragma once
/// \file fft.hpp
/// Radix-2 iterative FFT for the feature extractors (mel filterbanks,
/// spectral features). Power-of-two sizes only.

#include <complex>
#include <vector>

namespace iob::isa {

using Complex = std::complex<double>;

/// In-place forward FFT; size must be a power of two (>= 1).
void fft(std::vector<Complex>& x);

/// In-place inverse FFT (includes 1/N normalization).
void ifft(std::vector<Complex>& x);

/// FFT of a real signal zero-padded to the next power of two; returns the
/// full complex spectrum.
std::vector<Complex> rfft(const std::vector<float>& x);

/// One-sided magnitude spectrum (bins 0..N/2) of a real signal.
std::vector<double> magnitude_spectrum(const std::vector<float>& x);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

}  // namespace iob::isa
