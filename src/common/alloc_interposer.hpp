#pragma once
/// \file alloc_interposer.hpp
/// Global operator new/delete interposition for allocation-count
/// assertions (the zero-steady-state-allocation contracts of the event
/// queue and the nn inference engine).
///
/// Include from exactly ONE translation unit per binary: this header
/// DEFINES the replaceable global allocation functions (a second inclusion
/// fails to link, by design). Counting is process-wide; callers snapshot
/// `iob::alloc_interposer::new_calls` around the region under test.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace iob::alloc_interposer {
/// Total operator-new calls since process start (all threads).
inline std::atomic<std::uint64_t> new_calls{0};
}  // namespace iob::alloc_interposer

void* operator new(std::size_t size) {
  iob::alloc_interposer::new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

// The interposed operator new above allocates with malloc, so free() here
// IS the matched deallocator; the compiler cannot see through the global
// replacement and flags new/free pairs at inlined call sites.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
