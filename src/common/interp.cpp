#include "common/interp.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace iob::common {

namespace {

AnchorTable validated(AnchorTable anchors) {
  IOB_EXPECTS(anchors.size() >= 2, "interpolator needs at least two anchor points");
  for (std::size_t i = 1; i < anchors.size(); ++i) {
    IOB_EXPECTS(anchors[i].first > anchors[i - 1].first, "anchor x values must strictly increase");
  }
  return anchors;
}

}  // namespace

LinearInterpolator::LinearInterpolator(AnchorTable anchors) : anchors_(validated(std::move(anchors))) {}

double LinearInterpolator::operator()(double x) const {
  // Find the segment [i, i+1] whose x-range covers `x`; clamp to terminal
  // segments so extrapolation continues the end slopes.
  const auto upper = std::upper_bound(anchors_.begin(), anchors_.end(), x,
                                      [](double v, const auto& p) { return v < p.first; });
  std::size_t hi = static_cast<std::size_t>(upper - anchors_.begin());
  hi = std::clamp<std::size_t>(hi, 1, anchors_.size() - 1);
  const auto& [x0, y0] = anchors_[hi - 1];
  const auto& [x1, y1] = anchors_[hi];
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

namespace {

AnchorTable to_log_domain(const AnchorTable& anchors) {
  AnchorTable out;
  out.reserve(anchors.size());
  for (const auto& [x, y] : anchors) {
    IOB_EXPECTS(x > 0.0 && y > 0.0, "log-log anchors must be positive");
    out.emplace_back(std::log10(x), std::log10(y));
  }
  return out;
}

}  // namespace

LogLogInterpolator::LogLogInterpolator(AnchorTable anchors)
    : log_interp_(to_log_domain(anchors)), anchors_(std::move(anchors)) {}

double LogLogInterpolator::operator()(double x) const {
  IOB_EXPECTS(x > 0.0, "log-log interpolation requires x > 0");
  return std::pow(10.0, log_interp_(std::log10(x)));
}

double LogLogInterpolator::local_exponent(double x) const {
  IOB_EXPECTS(x > 0.0, "log-log interpolation requires x > 0");
  // Central difference in log-domain; segments are linear so a small step
  // recovers the segment slope exactly away from knots.
  const double lx = std::log10(x);
  const double h = 1e-6;
  return (log_interp_(lx + h) - log_interp_(lx - h)) / (2.0 * h);
}

}  // namespace iob::common
