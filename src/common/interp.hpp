#pragma once
/// \file interp.hpp
/// Piecewise interpolation over tabulated (x, y) anchor points.
///
/// Used for survey-derived models, most importantly the sensing-power vs
/// data-rate survey behind the paper's Fig. 3 (`energy/sensing_power.hpp`).
/// Two flavours:
///   * `LinearInterpolator`  — plain piecewise-linear in (x, y).
///   * `LogLogInterpolator`  — piecewise-linear in (log10 x, log10 y), i.e.
///     piecewise power laws, the natural fit for power-vs-rate surveys that
///     span many decades.
/// Both clamp-extrapolate beyond the table ends using the terminal segment
/// slope, which keeps sweeps outside the surveyed range well-behaved.

#include <utility>
#include <vector>

namespace iob::common {

/// A strictly-increasing-x table of anchor points.
using AnchorTable = std::vector<std::pair<double, double>>;

class LinearInterpolator {
 public:
  /// \param anchors at least two points, strictly increasing in x.
  explicit LinearInterpolator(AnchorTable anchors);

  /// Interpolated (or terminal-slope extrapolated) value at `x`.
  [[nodiscard]] double operator()(double x) const;

  [[nodiscard]] const AnchorTable& anchors() const { return anchors_; }

 private:
  AnchorTable anchors_;
};

class LogLogInterpolator {
 public:
  /// \param anchors at least two points, strictly increasing in x;
  ///        all x and y must be > 0 (log-domain fit).
  explicit LogLogInterpolator(AnchorTable anchors);

  /// Interpolated value at `x > 0`; piecewise power-law between anchors.
  [[nodiscard]] double operator()(double x) const;

  /// Local power-law exponent d(log y)/d(log x) at `x` (segment slope).
  [[nodiscard]] double local_exponent(double x) const;

  [[nodiscard]] const AnchorTable& anchors() const { return anchors_; }

 private:
  LinearInterpolator log_interp_;
  AnchorTable anchors_;
};

}  // namespace iob::common
