#pragma once
/// \file units.hpp
/// SI unit helpers and conversions used across the library.
///
/// Convention: all physical quantities are `double` in base SI units
/// (seconds, watts, joules, hertz, bits-per-second, meters, volts, farads),
/// with the unit spelled out in the variable name when it is not obvious
/// (e.g. `power_w`, `energy_j`, `rate_bps`). These constexpr helpers make
/// call sites read like the paper's numbers: `100.0 * pico * 1.0` ->
/// `100.0 * units::pJ`.

#include <cmath>

namespace iob::units {

// ---- SI prefixes -----------------------------------------------------------
inline constexpr double tera = 1e12;
inline constexpr double giga = 1e9;
inline constexpr double mega = 1e6;
inline constexpr double kilo = 1e3;
inline constexpr double milli = 1e-3;
inline constexpr double micro = 1e-6;
inline constexpr double nano = 1e-9;
inline constexpr double pico = 1e-12;
inline constexpr double femto = 1e-15;

// ---- Time ------------------------------------------------------------------
inline constexpr double second = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double minute = 60.0;
inline constexpr double hour = 3600.0;
inline constexpr double day = 86400.0;
inline constexpr double week = 7.0 * day;
/// Julian year, the "perpetual operability" threshold unit (paper Sec. V).
inline constexpr double year = 365.25 * day;

// ---- Power / energy --------------------------------------------------------
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double nW = 1e-9;
inline constexpr double J = 1.0;
inline constexpr double mJ = 1e-3;
inline constexpr double uJ = 1e-6;
inline constexpr double nJ = 1e-9;
inline constexpr double pJ = 1e-12;

// ---- Data ------------------------------------------------------------------
inline constexpr double bit = 1.0;
inline constexpr double byte = 8.0;
inline constexpr double kbit = 1e3;
inline constexpr double Mbit = 1e6;
inline constexpr double bps = 1.0;
inline constexpr double kbps = 1e3;
inline constexpr double Mbps = 1e6;

// ---- Frequency / electrical --------------------------------------------------
inline constexpr double Hz = 1.0;
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;
inline constexpr double uV = 1e-6;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;
inline constexpr double ohm = 1.0;
inline constexpr double kohm = 1e3;
inline constexpr double Mohm = 1e6;

// ---- Conversions -----------------------------------------------------------

/// Battery capacity in mAh at a nominal voltage -> stored energy in joules.
constexpr double battery_energy_j(double capacity_mah, double nominal_v) {
  return capacity_mah * 1e-3 * nominal_v * hour;
}

/// Power ratio -> decibels. Requires ratio > 0.
inline double to_db(double power_ratio) { return 10.0 * std::log10(power_ratio); }

/// Decibels -> power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Voltage (amplitude) ratio -> decibels.
inline double to_db_voltage(double v_ratio) { return 20.0 * std::log10(v_ratio); }

/// Decibels -> voltage (amplitude) ratio.
inline double from_db_voltage(double db) { return std::pow(10.0, db / 20.0); }

/// Watts -> dBm.
inline double to_dbm(double power_w) { return 10.0 * std::log10(power_w / mW); }

/// dBm -> watts.
inline double from_dbm(double dbm) { return mW * std::pow(10.0, dbm / 10.0); }

}  // namespace iob::units
