#pragma once
/// \file expect.hpp
/// Precondition / invariant checking (Core Guidelines I.5/I.7 style).
///
/// `IOB_EXPECTS(cond, msg)` throws `std::invalid_argument` on a violated
/// precondition; `IOB_ENSURES(cond, msg)` throws `std::logic_error` on a
/// violated postcondition/invariant. Both are always-on: the library models
/// physical systems where silently propagating a NaN or a negative power is
/// far more expensive than the branch.

#include <stdexcept>
#include <string>

namespace iob::detail {

[[noreturn]] inline void fail_expects(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  throw std::invalid_argument(std::string("precondition failed: ") + cond + " at " + file + ":" +
                              std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void fail_ensures(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  throw std::logic_error(std::string("invariant failed: ") + cond + " at " + file + ":" +
                         std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace iob::detail

#define IOB_EXPECTS(cond, msg)                                    \
  do {                                                            \
    if (!(cond)) {                                                \
      ::iob::detail::fail_expects(#cond, __FILE__, __LINE__, msg); \
    }                                                             \
  } while (false)

#define IOB_ENSURES(cond, msg)                                    \
  do {                                                            \
    if (!(cond)) {                                                \
      ::iob::detail::fail_ensures(#cond, __FILE__, __LINE__, msg); \
    }                                                             \
  } while (false)
