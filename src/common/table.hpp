#pragma once
/// \file table.hpp
/// Console table rendering for bench harnesses and reports.
///
/// Every bench binary regenerates one of the paper's figures/tables as rows
/// on stdout; this printer keeps them aligned and consistent. It also
/// provides engineering-notation formatting (`si_format`) so values read
/// like the paper ("415 nW", "100 pJ/b", "4 Mb/s").

#include <cstddef>
#include <string>
#include <vector>

namespace iob::common {

/// Format `value` with an SI prefix and `digits` significant digits,
/// e.g. si_format(4.15e-7, "W") -> "415 nW". Handles zero, negatives and
/// out-of-prefix-range magnitudes gracefully.
std::string si_format(double value, const std::string& unit, int digits = 3);

/// Fixed-point formatting helper (std::format is not guaranteed in the
/// offline toolchain).
std::string fixed(double value, int decimals);

/// A simple left/right aligned console table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a data row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal rule row (rendered as dashes).
  void add_rule();

  /// Render with box-drawing-free ASCII (pipe-delimited, padded).
  [[nodiscard]] std::string to_string() const;

  /// Convenience: render straight to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

/// Print a section banner: "=== title ===" with surrounding blank lines.
void print_banner(const std::string& title);

/// Print an indented "key: value" annotation line (figure footnotes).
void print_note(const std::string& note);

}  // namespace iob::common
