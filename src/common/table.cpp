#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/expect.hpp"

namespace iob::common {

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string si_format(double value, const std::string& unit, int digits) {
  if (value == 0.0) return "0 " + unit;
  if (!std::isfinite(value)) return (value > 0 ? "inf " : "-inf ") + unit;

  static constexpr struct {
    double scale;
    const char* prefix;
  } kPrefixes[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},  {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };

  const double mag = std::fabs(value);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale * 0.9999999 || p.scale == 1e-15) {
      const double scaled = value / p.scale;
      // Significant digits: decimals = digits - (integer digits of |scaled|).
      const double abs_scaled = std::fabs(scaled);
      int int_digits = abs_scaled < 1.0 ? 1 : static_cast<int>(std::floor(std::log10(abs_scaled))) + 1;
      int decimals = std::max(0, digits - int_digits);
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*f %s%s", decimals, scaled, p.prefix, unit.c_str());
      return buf;
    }
  }
  return fixed(value, digits) + " " + unit;  // unreachable, defensive
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  IOB_EXPECTS(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  IOB_EXPECTS(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.emplace_back(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
    return os.str();
  };
  auto render_rule = [&] {
    std::ostringstream os;
    os << "+";
    for (std::size_t c = 0; c < headers_.size(); ++c) os << std::string(widths[c] + 2, '-') << "+";
    os << "\n";
    return os.str();
  };

  std::ostringstream out;
  out << render_rule() << render_row(headers_) << render_rule();
  for (const auto& row : rows_) {
    out << (row.empty() ? render_rule() : render_row(row));
  }
  out << render_rule();
  return out.str();
}

void Table::print() const { std::cout << to_string(); }

void print_banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

void print_note(const std::string& note) { std::cout << "  * " << note << "\n"; }

}  // namespace iob::common
