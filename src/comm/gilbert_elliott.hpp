#pragma once
/// \file gilbert_elliott.hpp
/// Two-state Gilbert–Elliott burst-loss overlay for the body-bus channel.
///
/// The clean-path `Link` draws frame losses i.i.d. from its BER-derived
/// frame error rate — fine for thermal noise, wrong for the bursty
/// interference a body-worn channel actually sees (posture changes, nearby
/// transmitters, contact-impedance excursions). Gilbert–Elliott models this
/// as a continuous-time two-state Markov chain: a *good* state where the
/// base FER applies unchanged, and a *bad* state where an additional loss
/// probability compounds with it, producing the correlated loss episodes
/// ARQ backoff policies are designed around.
///
/// The chain advances lazily: each `loss_probability(t, ...)` query walks
/// the exponential sojourn sequence forward to cover `t`. Queries must be
/// non-decreasing in time, which the event-driven MAC guarantees. All
/// sojourn draws come from the overlay's own forked `Rng` stream so an
/// enabled overlay never perturbs the MAC's loss-draw sequence.

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace iob::comm {

struct GilbertElliottParams {
  double mean_good_s = 0.5;   ///< mean sojourn in the good state
  double mean_bad_s = 0.125;  ///< mean sojourn in the bad (burst) state
  double bad_loss = 0.5;      ///< extra loss probability while bad
};

class GilbertElliott {
 public:
  GilbertElliott(GilbertElliottParams params, sim::Rng rng);

  /// Effective frame-loss probability at time `t` given the link's base
  /// frame error rate. Advances the chain up to `t`; queries must be
  /// non-decreasing in time.
  [[nodiscard]] double loss_probability(sim::Time t, double base_fer);

  /// True if the chain (as advanced so far) is in the bad state.
  [[nodiscard]] bool bad() const { return bad_; }

  /// Long-run fraction of time spent in the bad state.
  [[nodiscard]] double stationary_bad_fraction() const;

  /// Analytic long-run loss rate for a given base FER (stationary mixture
  /// of the good- and bad-state loss probabilities).
  [[nodiscard]] double expected_loss(double base_fer) const;

  [[nodiscard]] const GilbertElliottParams& params() const { return params_; }

 private:
  GilbertElliottParams params_;
  sim::Rng rng_;
  bool bad_ = false;          ///< chain starts in the good state
  sim::Time state_end_ = 0.0; ///< current sojourn ends here
};

}  // namespace iob::comm
