#pragma once
/// \file link.hpp
/// Link abstraction: rate, per-bit energy, per-frame overheads, reliability.
/// Concrete links (Wi-R, BLE, NFMI) fill a `LinkSpec` from their PHY models;
/// everything downstream (MAC, partitioner, platform power model) consumes
/// the same interface, which is what makes the paper's BLE-vs-Wi-R
/// comparisons one-line swaps in benches and examples.

#include <cstdint>
#include <string>

#include "phy/modulation.hpp"

namespace iob::comm {

struct LinkSpec {
  std::string name;
  double phy_rate_bps = 1e6;        ///< raw on-air bit rate
  double tx_energy_per_bit_j = 0;   ///< transmitter energy per on-air bit
  double rx_energy_per_bit_j = 0;   ///< receiver energy per on-air bit
  double tx_power_w = 0;            ///< active TX power (= rate * e/bit)
  double rx_power_w = 0;            ///< active RX power
  double idle_power_w = 0;          ///< powered-but-quiet floor
  double sleep_power_w = 0;         ///< deep-sleep floor
  double wake_energy_j = 0;         ///< sleep->active transition energy
  double wake_time_s = 0;           ///< sleep->active transition time
  std::uint32_t frame_overhead_bits = 0;  ///< preamble + header + CRC
  double per_frame_turnaround_s = 0;      ///< inter-frame spacing / turnaround
  double protocol_efficiency = 1.0;       ///< fraction of airtime usable for app data
  phy::Modulation modulation = phy::Modulation::kOok;
  double link_snr_db = 30.0;        ///< operating per-bit SNR at the intended RX
};

/// Analytic per-frame and sustained-stream link calculations shared by all
/// link types. Time/energy include the frame overhead bits; sustained
/// throughput includes protocol efficiency.
class Link {
 public:
  explicit Link(LinkSpec spec);
  virtual ~Link() = default;

  [[nodiscard]] const LinkSpec& spec() const { return spec_; }

  /// On-air bits for a payload (payload + frame overhead).
  [[nodiscard]] std::uint64_t on_air_bits(std::uint32_t payload_bytes) const;

  /// Time (s) to move one frame of `payload_bytes` (airtime + turnaround).
  [[nodiscard]] double frame_time_s(std::uint32_t payload_bytes) const;

  /// TX-side energy (J) for one frame.
  [[nodiscard]] double frame_tx_energy_j(std::uint32_t payload_bytes) const;

  /// RX-side energy (J) for one frame.
  [[nodiscard]] double frame_rx_energy_j(std::uint32_t payload_bytes) const;

  /// Sustained application-level throughput (bps) with `payload_bytes`
  /// frames back-to-back.
  [[nodiscard]] double app_throughput_bps(std::uint32_t payload_bytes = 240) const;

  /// Bit error rate at the operating SNR.
  [[nodiscard]] double bit_error_rate() const;

  /// Frame error rate for a payload size at the operating SNR.
  [[nodiscard]] double frame_error_rate(std::uint32_t payload_bytes) const;

  /// Average TX-side power (W) to sustain `offered_bps` of application data
  /// in `payload_bytes` frames, duty-cycling between frames. Includes frame
  /// overheads and the idle/sleep floor. Saturates at link capacity.
  [[nodiscard]] virtual double stream_tx_power_w(double offered_bps,
                                                 std::uint32_t payload_bytes = 240) const;

  /// Effective delivered energy per application bit (J/bit) at a given
  /// offered load — the figure-of-merit the paper quotes (100 pJ/b Wi-R).
  [[nodiscard]] double effective_energy_per_app_bit_j(double offered_bps,
                                                      std::uint32_t payload_bytes = 240) const;

 protected:
  LinkSpec spec_;
};

}  // namespace iob::comm
