#pragma once
/// \file polling.hpp
/// Hub-driven polling MAC — the alternative coordination scheme contrasted
/// with TDMA in the A2 ablation. The hub polls each leaf in round-robin;
/// a leaf answers with a data frame or a short "nothing" reply. Latency for
/// sparse traffic is lower (no waiting for a fixed slot) but leaves must
/// keep their receivers listening for polls, which raises the leaf-side
/// energy floor — the trade the ablation quantifies.

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "comm/frame.hpp"
#include "comm/link.hpp"
#include "comm/mac_stats.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace iob::comm {

struct PollingConfig {
  std::uint32_t poll_bytes = 4;       ///< hub poll frame payload
  std::uint32_t nothing_bytes = 2;    ///< empty reply payload
  unsigned max_retries = 8;
  std::size_t max_queue_frames = 4096;
  /// Fraction of RX active power a leaf pays while idle-listening for polls
  /// (1.0 = full RX; <1 models a wake-receiver assist).
  double idle_listen_factor = 1.0;
};

class PollingMac {
 public:
  using DeliveryHandler = std::function<void(const Frame&, sim::Time)>;

  PollingMac(sim::Simulator& sim, const Link& link, PollingConfig config = {},
             sim::TraceSink* trace = nullptr);

  NodeId add_node(std::string name);
  bool enqueue(NodeId node, Frame frame);
  void set_delivery_handler(DeliveryHandler handler) { on_delivery_ = std::move(handler); }

  void start(sim::Time t0 = 0.0);
  void stop() { running_ = false; }

  /// Finalize idle-listening energy up to the current sim time (also called
  /// implicitly by each poll round).
  void settle_idle_energy();

  [[nodiscard]] const MacStats& stats() const { return stats_; }

 private:
  struct NodeState {
    std::deque<Frame> queue;
    unsigned head_retries = 0;
  };

  void poll_next();

  sim::Simulator& sim_;
  const Link& link_;
  PollingConfig config_;
  sim::TraceSink* trace_;
  std::vector<NodeState> nodes_;
  MacStats stats_;
  DeliveryHandler on_delivery_;
  bool running_ = false;
  std::size_t next_node_ = 0;
  sim::Rng rng_;
  sim::Time started_at_ = 0.0;
  sim::Time idle_settled_until_ = 0.0;
};

}  // namespace iob::comm
