#pragma once
/// \file channel_dynamics.hpp
/// Continuous channel hostility for a body-bus link: SIR interference
/// (`phy::InterferenceField`) and body-motion fading
/// (`phy::BodyMotionProcess`) composed into one time-varying frame-error
/// process (docs/robustness.md).
///
/// Where PR 6's `GilbertElliott` overlay models discrete *fault episodes*
/// (a burst-loss regime the channel visits and leaves), this layer models
/// the channel's *ambient physics*: co-located aggressor radios and the
/// wearer's posture shifting the link budget every query. The install
/// pattern mirrors `TdmaBus::set_channel_fault`: non-owning pointer, the
/// MAC consults it inside `frame_loss_probability`, and the clean path
/// (no dynamics installed, or a config with nothing enabled) is
/// bit-identical to pre-dynamics behavior.
///
/// Composition order inside the MAC: base link FER -> dynamics (this
/// class) -> Gilbert–Elliott fault overlay. Motion shifts the operating
/// SNR and the FER is *recomputed* from the modulation's BER waterfall at
/// the shifted point — a multiplier could never stress a clean link whose
/// base FER is ~0 — then interference mixes in the collided-state FER at
/// that same shifted SNR.

#include <cstdint>
#include <optional>

#include "comm/link.hpp"
#include "phy/body_motion.hpp"
#include "phy/interference.hpp"
#include "sim/rng.hpp"

namespace iob::comm {

struct ChannelDynamicsConfig {
  /// Interference stress level; disengaged when absent or zero-aggressor.
  std::optional<phy::SirLevel> interference{};
  /// Body-motion process parameters; disengaged when absent.
  std::optional<phy::BodyMotionParams> motion{};
  /// RNG stream id for the motion chain's sojourn/transition draws (forked
  /// off the simulation root, like the MAC's 0x7d0a and the fault
  /// injector's 0xFA017 — installing dynamics never perturbs other draws).
  std::uint64_t stream_id = 0xC4A0;

  /// True when any component would actually perturb the channel.
  [[nodiscard]] bool any() const {
    return (interference.has_value() && interference->aggressors > 0 &&
            interference->duty_cycle > 0.0) ||
           motion.has_value();
  }
};

class ChannelDynamics {
 public:
  /// \param link the bus link whose operating point the dynamics displace
  /// \param rng  a stream forked for this process (`cfg.stream_id`); the
  ///             motion chain forks sub-stream 1 of it, mirroring the
  ///             fault injector's channel sub-stream discipline
  ChannelDynamics(const Link& link, ChannelDynamicsConfig cfg, sim::Rng rng);

  /// Loss probability for a frame of `payload_bytes` at sim time `t`,
  /// given the link's precomputed clean FER `base_fer` for that size.
  /// Query times must be non-decreasing (lazy motion advance). When the
  /// motion gain delta is 0 and interference is idle this returns
  /// `base_fer` unchanged — the bit-identity anchor.
  [[nodiscard]] double loss_probability(double t, std::uint32_t payload_bytes,
                                        double base_fer);

  [[nodiscard]] const phy::InterferenceField* interference() const {
    return field_ ? &*field_ : nullptr;
  }
  [[nodiscard]] phy::BodyMotionProcess* motion() {
    return motion_ ? &*motion_ : nullptr;
  }

 private:
  /// FER of a `payload_bytes` frame recomputed at `snr_db` on this link's
  /// modulation (same BER/packet-success pipeline as `Link::frame_error_rate`).
  [[nodiscard]] double fer_at(double snr_db, std::uint32_t payload_bytes) const;

  const Link& link_;
  std::optional<phy::InterferenceField> field_{};
  std::optional<phy::BodyMotionProcess> motion_{};
};

}  // namespace iob::comm
