#include "comm/frame.hpp"

namespace iob::comm {

const char* to_string(FrameKind k) {
  switch (k) {
    case FrameKind::kData: return "data";
    case FrameKind::kAck: return "ack";
    case FrameKind::kPoll: return "poll";
    case FrameKind::kBeacon: return "beacon";
  }
  return "?";
}

}  // namespace iob::comm
