#include "comm/wir_link.hpp"

#include "common/units.hpp"
#include "phy/noise.hpp"

namespace iob::comm {

LinkSpec WiRLink::make_spec(const WiRLinkParams& p, const phy::EqsChannel& ch) {
  LinkSpec s;
  s.name = "Wi-R (EQS-HBC)";
  s.phy_rate_bps = p.phy_rate_bps;
  s.tx_energy_per_bit_j = p.energy_per_bit_j * p.tx_share;
  s.rx_energy_per_bit_j = p.energy_per_bit_j * (1.0 - p.tx_share);
  s.tx_power_w = s.tx_energy_per_bit_j * p.phy_rate_bps;
  s.rx_power_w = s.rx_energy_per_bit_j * p.phy_rate_bps;
  s.idle_power_w = p.idle_power_w;
  s.sleep_power_w = p.sleep_power_w;
  s.wake_energy_j = p.wake_energy_j;
  s.wake_time_s = p.wake_time_s;
  s.frame_overhead_bits = p.frame_overhead_bits;
  s.per_frame_turnaround_s = p.per_frame_turnaround_s;
  // Broadband NRZ/OOK voltage-mode signalling occupies roughly the bit rate
  // in bandwidth; the body bus is a single shared medium, so protocol
  // efficiency below 1 accounts for beacons/acks.
  s.protocol_efficiency = 0.95;
  s.modulation = phy::Modulation::kOok;

  // Link budget: RX amplitude = TX swing * flat-band channel gain over the
  // configured body path; noise = high-Z front-end thermal floor over the
  // signalling bandwidth. SNR is amplitude^2 / v_n^2.
  const double carrier = 10.0 * units::MHz;  // mid-band EQS operating point
  const double v_rx = p.tx_voltage_v * ch.voltage_gain(carrier, p.channel_distance_m);
  const double bw = p.phy_rate_bps;  // NRZ first-null bandwidth ~ bit rate
  // Effective front-end noise resistance: the high-Z amp's equivalent input
  // noise, ~100 kohm class for uW-level EQS receivers.
  const double v_n = phy::thermal_noise_voltage_v(100.0 * units::kohm, bw);
  const double snr_db = units::to_db((v_rx * v_rx) / (v_n * v_n));
  // Fold in-band interference into the operating point (BodyWire-style
  // time-domain rejection applies first); a clean band leaves SNR intact.
  s.link_snr_db = p.interference_sir_db >= 300.0
                      ? snr_db
                      : phy::effective_snir_db(snr_db, p.interference_sir_db,
                                               p.interference_rejection_db);
  return s;
}

WiRLink::WiRLink(WiRLinkParams params)
    : Link(make_spec(params, phy::EqsChannel(params.channel))),
      params_(params),
      channel_(params.channel) {}

WiRLinkParams WiRLink::ulp_profile() {
  WiRLinkParams p;
  p.phy_rate_bps = 250e3;        // kb/s-class authentication/medical node
  p.energy_per_bit_j = 50e-12;   // lower swing, relaxed timing
  p.tx_voltage_v = 0.4;
  p.idle_power_w = 20e-9;        // wake-on-beacon receiver assist
  p.sleep_power_w = 5e-9;
  p.frame_overhead_bits = 64;    // trimmed header for tiny payloads
  p.per_frame_turnaround_s = 10e-6;
  return p;
}

}  // namespace iob::comm
