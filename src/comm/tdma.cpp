#include "comm/tdma.hpp"

#include <utility>

#include "comm/channel_dynamics.hpp"
#include "comm/gilbert_elliott.hpp"
#include "common/expect.hpp"

namespace iob::comm {

TdmaBus::TdmaBus(sim::Simulator& sim, const Link& link, TdmaConfig config, sim::TraceSink* trace)
    : sim_(sim), link_(link), config_(config), trace_(trace), rng_(sim.rng().fork(0x7d0a)) {
  if (config_.slot_s <= 0.0) {
    // Auto-size from this link's rate: the slot fits one MTU frame plus
    // margin, so slower buses (BLE/NFMI/ULP-Wi-R) stop inheriting a slot
    // constant tuned for Wi-R's 4 Mb/s PHY.
    IOB_EXPECTS(config_.auto_slot_mtu_bytes >= 1, "auto-slot MTU must be at least 1 byte");
    IOB_EXPECTS(config_.auto_slot_margin >= 1.0, "auto-slot margin must be >= 1");
    config_.slot_s = link_.frame_time_s(config_.auto_slot_mtu_bytes) * config_.auto_slot_margin;
  }
  IOB_EXPECTS(config_.slot_s > 0.0, "slot duration must be positive");
  IOB_EXPECTS(config_.guard_s >= 0.0, "guard time must be non-negative");
  IOB_EXPECTS(config_.health_ewma_alpha > 0.0 && config_.health_ewma_alpha <= 1.0,
              "health EWMA alpha must be in (0, 1]");
  const double min_frame = link_.frame_time_s(1);
  IOB_EXPECTS(config_.slot_s >= min_frame, "slot must fit at least a minimal frame");
}

NodeId TdmaBus::add_node(std::string name, unsigned slot_weight) {
  IOB_EXPECTS(slot_weight >= 1, "slot weight must be at least 1");
  IOB_EXPECTS(!running_, "cannot add nodes while the bus is running");
  nodes_.push_back(NodeState{slot_weight, {}, 0, true});
  MacNodeStats s;
  s.name = std::move(name);
  stats_.nodes.push_back(std::move(s));
  return static_cast<NodeId>(nodes_.size());  // 1-based
}

bool TdmaBus::enqueue(NodeId node, Frame frame) {
  IOB_EXPECTS(node >= 1 && node <= nodes_.size(), "unknown node id");
  IOB_EXPECTS(link_.frame_time_s(frame.payload_bytes) <= config_.slot_s,
              "frame exceeds slot duration and could never transmit");
  auto& st = nodes_[node - 1];
  if (st.queue.size() >= config_.max_queue_frames) {
    auto& ns = stats_.nodes[node - 1];
    ++ns.queue_overflows;
    ++ns.frames_dropped;
    if (!hub_up_) {
      // The queue is acting as the store-and-retry buffer for a hub
      // outage; this overflow is lost *to the fault*, not to congestion.
      ++ns.frames_dropped_overflow;
    } else {
      // Hub up: the schedule is simply saturated. This used to count only
      // `queue_overflows`, leaving the drop outside the taxonomy.
      ++ns.frames_dropped_overflow_clean;
    }
    return false;
  }
  frame.src = node;
  frame.dst = kHubId;
  st.queue.push_back(std::move(frame));
  return true;
}

bool TdmaBus::enqueue_downlink(NodeId dst, Frame frame) {
  IOB_EXPECTS(dst >= 1 && dst <= nodes_.size(), "unknown destination node");
  IOB_EXPECTS(config_.downlink_slot_s > 0.0, "downlink window disabled in TdmaConfig");
  IOB_EXPECTS(link_.frame_time_s(frame.payload_bytes) <= config_.downlink_slot_s,
              "downlink frame exceeds its window");
  if (downlink_queue_.size() >= config_.max_queue_frames) return false;
  frame.src = kHubId;
  frame.dst = dst;
  downlink_queue_.push_back(std::move(frame));
  return true;
}

double TdmaBus::superframe_duration_s() const {
  const double beacon = link_.frame_time_s(config_.beacon_bytes);
  unsigned total_slots = 0;
  for (const auto& n : nodes_) total_slots += n.weight;
  return beacon + config_.downlink_slot_s +
         static_cast<double>(total_slots) * (config_.slot_s + config_.guard_s);
}

void TdmaBus::start(sim::Time t0) {
  IOB_EXPECTS(!nodes_.empty(), "TDMA bus needs at least one node");
  running_ = true;
  started_at_ = t0;
  sim_.at(t0, [this] { run_superframe(); });
}

std::size_t TdmaBus::queue_depth(NodeId node) const {
  IOB_EXPECTS(node >= 1 && node <= nodes_.size(), "unknown node id");
  return nodes_[node - 1].queue.size();
}

void TdmaBus::set_node_powered(NodeId node, bool powered) {
  IOB_EXPECTS(node >= 1 && node <= nodes_.size(), "unknown node id");
  auto& st = nodes_[node - 1];
  if (st.powered == powered) return;
  st.powered = powered;
  if (!powered) {
    // Brownout loses whatever was staged at the leaf.
    auto& ns = stats_.nodes[node - 1];
    ns.frames_dropped += st.queue.size();
    ns.frames_dropped_fault += st.queue.size();
    st.queue.clear();
    st.head_retries = 0;
  }
}

bool TdmaBus::node_powered(NodeId node) const {
  IOB_EXPECTS(node >= 1 && node <= nodes_.size(), "unknown node id");
  return nodes_[node - 1].powered;
}

void TdmaBus::count_shed(NodeId node) {
  IOB_EXPECTS(node >= 1 && node <= nodes_.size(), "unknown node id");
  auto& ns = stats_.nodes[node - 1];
  ++ns.frames_dropped;
  ++ns.frames_dropped_shed;
}

double TdmaBus::frame_loss_probability(sim::Time t, std::uint32_t payload_bytes) {
  double p = link_.frame_error_rate(payload_bytes);
  if (channel_dynamics_) p = channel_dynamics_->loss_probability(t, payload_bytes, p);
  return channel_fault_ ? channel_fault_->loss_probability(t, p) : p;
}

void TdmaBus::update_health_ewmas() {
  const double a = config_.health_ewma_alpha;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& st = nodes_[i];
    auto& ns = stats_.nodes[i];
    const std::uint64_t delivered = ns.frames_delivered - st.ewma_delivered;
    const std::uint64_t retried = ns.frames_retried - st.ewma_retried;
    st.ewma_delivered = ns.frames_delivered;
    st.ewma_retried = ns.frames_retried;
    const std::uint64_t attempts = delivered + retried;
    if (attempts == 0) continue;  // idle superframe: no channel evidence
    const double inv = 1.0 / static_cast<double>(attempts);
    ns.delivery_ratio_ewma =
        (1.0 - a) * ns.delivery_ratio_ewma + a * static_cast<double>(delivered) * inv;
    ns.retry_rate_ewma =
        (1.0 - a) * ns.retry_rate_ewma + a * static_cast<double>(retried) * inv;
  }
}

void TdmaBus::run_superframe() {
  if (!running_) return;
  const sim::Time t0 = sim_.now();

  if (!hub_up_) {
    // Hub crashed: no beacon, no windows. The cadence is preserved so the
    // restarted hub and the leaves re-synchronize at the next boundary;
    // leaf queues hold (store-and-retry) until then.
    ++stats_.superframes_skipped;
    const sim::Time cursor = t0 + superframe_duration_s();
    stats_.elapsed_s = (cursor - started_at_);
    if (trace_) trace_->emit(t0, "tdma", "superframe_skipped", "hub down");
    sim_.at(cursor, [this] { run_superframe(); });
    return;
  }

  // Beacon: hub transmits, every powered leaf listens to resynchronize.
  const double beacon_air = link_.frame_time_s(config_.beacon_bytes);
  stats_.hub_tx_energy_j += link_.frame_tx_energy_j(config_.beacon_bytes);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].powered) {
      stats_.nodes[i].rx_energy_j += link_.frame_rx_energy_j(config_.beacon_bytes);
    }
  }
  stats_.busy_airtime_s += beacon_air;
  if (trace_) trace_->emit(t0, "tdma", "beacon", "");

  // Downlink (actuation) window, if configured.
  sim::Time cursor = t0 + beacon_air;
  if (config_.downlink_slot_s > 0.0) {
    stats_.busy_airtime_s += run_downlink(cursor);
    cursor += config_.downlink_slot_s;
  }

  // Slots, in node order, weight slots each.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (unsigned s = 0; s < nodes_[i].weight; ++s) {
      const double used = run_slot(i, cursor);
      stats_.busy_airtime_s += used;
      cursor += config_.slot_s + config_.guard_s;
    }
  }

  stats_.elapsed_s = (cursor - started_at_);
  update_health_ewmas();
  if (on_superframe_end_) on_superframe_end_(cursor);
  sim_.at(cursor, [this] { run_superframe(); });
}

double TdmaBus::run_downlink(sim::Time window_start) {
  double used = 0.0;
  while (!downlink_queue_.empty()) {
    Frame& head = downlink_queue_.front();
    if (!nodes_[head.dst - 1].powered) {
      // Destination browned out: the hub (which tracks membership via slot
      // occupancy) drops the actuation frame instead of burning airtime.
      auto& dead = stats_.nodes[head.dst - 1];
      ++dead.frames_dropped;
      ++dead.frames_dropped_fault;
      downlink_queue_.pop_front();
      continue;
    }
    const double air = link_.frame_time_s(head.payload_bytes);
    if (used + air > config_.downlink_slot_s) break;

    used += air;
    stats_.hub_tx_energy_j += link_.frame_tx_energy_j(head.payload_bytes);
    auto& ns = stats_.nodes[head.dst - 1];
    ns.rx_energy_j += link_.frame_rx_energy_j(head.payload_bytes);

    const bool lost = rng_.bernoulli(frame_loss_probability(window_start + used, head.payload_bytes));
    if (!lost) {
      const sim::Time delivered_at = window_start + used;
      ++ns.downlink_frames;
      ns.downlink_bytes += head.payload_bytes;
      ns.downlink_latency_s.add(delivered_at - head.created_s);
      if (trace_) {
        trace_->emit(delivered_at, "tdma", "downlink",
                     ns.name + " bytes=" + std::to_string(head.payload_bytes));
      }
      if (on_downlink_) on_downlink_(head, delivered_at);
      downlink_queue_.pop_front();
    }
    // Lost downlink frames stay at the head and retry next superframe; the
    // hub is not energy-constrained, so no retry cap is enforced here.
  }
  return used;
}

double TdmaBus::run_slot(std::size_t node_idx, sim::Time slot_start) {
  auto& node = nodes_[node_idx];
  auto& ns = stats_.nodes[node_idx];
  double used = 0.0;

  if (!node.powered) return 0.0;  // browned-out leaf: its slots idle

  while (!node.queue.empty()) {
    Frame& head = node.queue.front();
    const double air = link_.frame_time_s(head.payload_bytes);
    if (used + air > config_.slot_s) break;  // does not fit in the remainder

    used += air;
    ns.tx_energy_j += link_.frame_tx_energy_j(head.payload_bytes);
    stats_.hub_rx_energy_j += link_.frame_rx_energy_j(head.payload_bytes);

    const bool lost = rng_.bernoulli(frame_loss_probability(slot_start + used, head.payload_bytes));
    if (lost) {
      ++ns.frames_retried;
      if (++node.head_retries > config_.max_retries) {
        ++ns.frames_dropped;
        ++ns.frames_dropped_arq;
        node.queue.pop_front();
        node.head_retries = 0;
      }
      continue;  // retry (same or next slot)
    }

    // Delivered at the end of its airtime within this slot.
    const sim::Time delivered_at = slot_start + used;
    ++ns.frames_delivered;
    ns.bytes_delivered += head.payload_bytes;
    ns.latency_s.add(delivered_at - head.created_s);
    if (trace_) {
      trace_->emit(delivered_at, "tdma", "deliver",
                   ns.name + " bytes=" + std::to_string(head.payload_bytes));
    }
    if (on_delivery_) on_delivery_(head, delivered_at);
    node.queue.pop_front();
    node.head_retries = 0;
  }
  return used;
}

}  // namespace iob::comm
