#pragma once
/// \file nfmi_link.hpp
/// NFMI link — the magnetic third modality (paper Sec. I). Moderate power
/// (hearing-aid class), short range, modest rates; included so benches can
/// place all three fundamental modalities side by side.

#include "comm/link.hpp"
#include "phy/nfmi_channel.hpp"

namespace iob::comm {

struct NfmiLinkParams {
  double phy_rate_bps = 596e3;      ///< NFMI-class (e.g. hearing aid links)
  double tx_power_w = 1.2e-3;
  double rx_power_w = 1.0e-3;
  double idle_power_w = 10e-6;
  double sleep_power_w = 1e-6;
  double wake_energy_j = 5e-6;
  double wake_time_s = 0.5e-3;
  std::uint32_t frame_overhead_bits = 128;
  double per_frame_turnaround_s = 100e-6;
  double protocol_efficiency = 0.7;
  double channel_distance_m = 0.3;  ///< coil-to-coil
  phy::NfmiChannelParams channel{};
};

class NfmiLink final : public Link {
 public:
  explicit NfmiLink(NfmiLinkParams params = {});

  [[nodiscard]] const NfmiLinkParams& params() const { return params_; }

 private:
  static LinkSpec make_spec(const NfmiLinkParams& p, const phy::NfmiChannel& ch);

  NfmiLinkParams params_;
  phy::NfmiChannel channel_;
};

}  // namespace iob::comm
