#include "comm/csma.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/expect.hpp"

namespace iob::comm {

CsmaBus::CsmaBus(sim::Simulator& sim, const Link& link, CsmaConfig config, sim::TraceSink* trace)
    : sim_(sim), link_(link), config_(config), trace_(trace), rng_(sim.rng().fork(0xc5aa)) {
  IOB_EXPECTS(config_.sigma_s > 0, "mini-slot must be positive");
  IOB_EXPECTS(config_.cw_min >= 2 && config_.cw_max >= config_.cw_min,
              "contention window bounds invalid");
}

NodeId CsmaBus::add_node(std::string name) {
  IOB_EXPECTS(!running_, "cannot add nodes while the bus is running");
  NodeState st;
  st.cw = config_.cw_min;
  nodes_.push_back(std::move(st));
  MacNodeStats s;
  s.name = std::move(name);
  stats_.nodes.push_back(std::move(s));
  return static_cast<NodeId>(nodes_.size());
}

void CsmaBus::draw_backoff(NodeState& node) {
  node.backoff =
      static_cast<unsigned>(rng_.uniform_int(0, static_cast<std::int64_t>(node.cw) - 1));
}

bool CsmaBus::enqueue(NodeId node, Frame frame) {
  IOB_EXPECTS(node >= 1 && node <= nodes_.size(), "unknown node id");
  auto& st = nodes_[node - 1];
  if (st.queue.size() >= config_.max_queue_frames) {
    ++stats_.nodes[node - 1].queue_overflows;
    return false;
  }
  frame.src = node;
  frame.dst = kHubId;
  const bool was_empty = st.queue.empty();
  st.queue.push_back(std::move(frame));
  if (was_empty) {
    st.cw = config_.cw_min;
    st.attempts = 0;
    draw_backoff(st);
  }
  if (running_ && !round_armed_) arm_round();
  return true;
}

bool CsmaBus::backlogged() const {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [](const NodeState& n) { return !n.queue.empty(); });
}

void CsmaBus::start(sim::Time t0) {
  IOB_EXPECTS(!nodes_.empty(), "CSMA bus needs at least one node");
  running_ = true;
  started_at_ = t0;
  if (backlogged()) {
    sim_.at(t0, [this] {
      round_armed_ = false;
      run_round();
    });
    round_armed_ = true;
  }
}

void CsmaBus::arm_round() {
  round_armed_ = true;
  // Respect an in-flight transmission: contention resumes once the medium
  // frees up.
  const sim::Time when = std::max(sim_.now(), medium_free_at_);
  sim_.at(when, [this] {
    round_armed_ = false;
    run_round();
  });
}

void CsmaBus::run_round() {
  if (!running_ || !backlogged()) return;

  // Find the soonest backoff expiry among backlogged nodes.
  unsigned min_backoff = std::numeric_limits<unsigned>::max();
  for (const auto& n : nodes_) {
    if (!n.queue.empty()) min_backoff = std::min(min_backoff, n.backoff);
  }
  const double wait = static_cast<double>(min_backoff) * config_.sigma_s;

  // All backlogged nodes sense the medium while counting down.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].queue.empty()) {
      stats_.nodes[i].rx_energy_j += link_.spec().rx_power_w * wait;
    }
  }

  // Winners: backoff expired together.
  std::vector<std::size_t> winners;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].queue.empty()) continue;
    nodes_[i].backoff -= min_backoff;
    if (nodes_[i].backoff == 0) winners.push_back(i);
  }

  double airtime = 0.0;
  for (const auto w : winners) {
    airtime = std::max(airtime, link_.frame_time_s(nodes_[w].queue.front().payload_bytes));
  }
  const sim::Time tx_start = sim_.now() + wait;
  const sim::Time tx_end = tx_start + airtime;
  medium_free_at_ = tx_end;

  if (winners.size() == 1) {
    const std::size_t w = winners.front();
    auto& node = nodes_[w];
    auto& ns = stats_.nodes[w];
    Frame frame = node.queue.front();
    ns.tx_energy_j += link_.frame_tx_energy_j(frame.payload_bytes);
    stats_.hub_rx_energy_j += link_.frame_rx_energy_j(frame.payload_bytes);
    stats_.busy_airtime_s += airtime;

    const bool lost = rng_.bernoulli(link_.frame_error_rate(frame.payload_bytes));
    if (lost) {
      ++ns.frames_retried;
      if (++node.attempts > config_.max_retries) {
        ++ns.frames_dropped;
        node.queue.pop_front();
        node.attempts = 0;
        node.cw = config_.cw_min;
      }
    } else {
      ++ns.frames_delivered;
      ns.bytes_delivered += frame.payload_bytes;
      ns.latency_s.add(tx_end - frame.created_s);
      if (trace_) {
        trace_->emit(tx_end, "csma", "deliver",
                     ns.name + " bytes=" + std::to_string(frame.payload_bytes));
      }
      node.queue.pop_front();
      node.attempts = 0;
      node.cw = config_.cw_min;
      if (on_delivery_) {
        sim_.at(tx_end, [this, frame, tx_end] { on_delivery_(frame, tx_end); });
      }
    }
    if (!node.queue.empty()) draw_backoff(node);
  } else {
    // Collision: every winner pays its TX, the medium is wasted for the
    // longest frame, windows double.
    ++collisions_;
    stats_.busy_airtime_s += airtime;
    for (const auto w : winners) {
      auto& node = nodes_[w];
      auto& ns = stats_.nodes[w];
      ns.tx_energy_j += link_.frame_tx_energy_j(node.queue.front().payload_bytes);
      ++ns.frames_retried;
      if (++node.attempts > config_.max_retries) {
        ++ns.frames_dropped;
        node.queue.pop_front();
        node.attempts = 0;
        node.cw = config_.cw_min;
        if (!node.queue.empty()) draw_backoff(node);
        continue;
      }
      node.cw = std::min(node.cw * 2, config_.cw_max);
      draw_backoff(node);
    }
    if (trace_) trace_->emit(tx_end, "csma", "collision", std::to_string(winners.size()));
  }

  // Non-winners sense the busy medium through the transmission.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (std::find(winners.begin(), winners.end(), i) == winners.end() &&
        !nodes_[i].queue.empty()) {
      stats_.nodes[i].rx_energy_j += link_.spec().rx_power_w * airtime;
    }
  }

  stats_.elapsed_s = tx_end - started_at_;
  if (backlogged()) {
    round_armed_ = true;
    sim_.at(tx_end, [this] {
      round_armed_ = false;
      run_round();
    });
  }
}

}  // namespace iob::comm
