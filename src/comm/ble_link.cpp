#include "comm/ble_link.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/units.hpp"
#include "phy/noise.hpp"

namespace iob::comm {

LinkSpec BleLink::make_spec(const BleLinkParams& p, const phy::RfChannel& ch) {
  LinkSpec s;
  s.name = "BLE (2.4 GHz radio)";
  s.phy_rate_bps = p.phy_rate_bps;
  s.tx_energy_per_bit_j = p.tx_power_w / p.phy_rate_bps;
  s.rx_energy_per_bit_j = p.rx_power_w / p.phy_rate_bps;
  s.tx_power_w = p.tx_power_w;
  s.rx_power_w = p.rx_power_w;
  s.idle_power_w = p.idle_power_w;
  s.sleep_power_w = p.sleep_power_w;
  s.wake_energy_j = p.wake_energy_j;
  s.wake_time_s = p.wake_time_s;
  s.frame_overhead_bits = p.frame_overhead_bits;
  s.per_frame_turnaround_s = p.per_frame_turnaround_s;
  s.protocol_efficiency = p.protocol_efficiency;
  s.modulation = phy::Modulation::kGfsk;

  // Link budget over the around-body path.
  const double pl_db = ch.on_body_path_loss_db(p.channel_distance_m);
  const double rx_w = phy::RfChannel::received_power_w(units::from_dbm(p.tx_power_dbm), pl_db);
  const phy::Receiver rx{p.phy_rate_bps /* ~1 MHz BW */, 8.0, 290.0};
  s.link_snr_db = rx.snr_db(rx_w);
  return s;
}

BleLink::BleLink(BleLinkParams params)
    : Link(make_spec(params, phy::RfChannel(params.channel))),
      params_(params),
      channel_(params.channel) {}

double BleLink::stream_tx_power_w(double offered_bps, std::uint32_t payload_bytes) const {
  IOB_EXPECTS(offered_bps >= 0, "offered load must be non-negative");
  IOB_EXPECTS(payload_bytes > 0, "payload must be non-empty");
  const double capacity = app_throughput_bps(payload_bytes);
  const double carried = std::min(offered_bps, capacity);
  const double frames_per_s = carried / (static_cast<double>(payload_bytes) * 8.0);

  // Airtime cost of the data frames themselves.
  const double tx = frames_per_s * frame_tx_energy_j(payload_bytes);
  const double airtime_frac =
      std::min(1.0, frames_per_s * static_cast<double>(on_air_bits(payload_bytes)) /
                        spec_.phy_rate_bps);

  // Connection events: the radio must wake every connection interval even
  // when little data is pending (keep-alive), paying crystal/PLL startup
  // plus an empty-packet exchange; this is the ULP-rate killer.
  const double events_per_s = 1.0 / params_.connection_interval_s;
  const double empty_event_airtime_s = 2.0 * (80.0 / spec_.phy_rate_bps);  // 2 x 80-bit PDUs
  const double event_overhead_w =
      events_per_s * (spec_.wake_energy_j +
                      empty_event_airtime_s * (params_.tx_power_w + params_.rx_power_w) / 2.0);

  const double idle = spec_.idle_power_w * (1.0 - airtime_frac);
  return tx + event_overhead_w + idle;
}

}  // namespace iob::comm
