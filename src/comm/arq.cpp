#include "comm/arq.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace iob::comm {

Arq::Arq(const Link& link, ArqPolicy policy) : link_(link), policy_(policy) {
  IOB_EXPECTS(policy_.max_attempts >= 1, "ARQ needs at least one attempt");
  IOB_EXPECTS(policy_.ack_timeout_s >= 0.0, "ACK timeout must be non-negative");
  IOB_EXPECTS(policy_.backoff_base_s >= 0.0, "backoff base must be non-negative");
  IOB_EXPECTS(policy_.backoff_max_s >= 0.0, "backoff cap must be non-negative");
  IOB_EXPECTS(policy_.backoff_jitter >= 0.0 && policy_.backoff_jitter < 1.0,
              "backoff jitter must be in [0, 1)");
}

double Arq::expected_attempts(std::uint32_t payload_bytes) const {
  const double p_fail = link_.frame_error_rate(payload_bytes);
  const double p_ok = 1.0 - p_fail;
  if (p_ok <= 0.0) return policy_.max_attempts;
  // Truncated geometric: E[attempts | delivered or exhausted].
  const unsigned n = policy_.max_attempts;
  double expected = 0.0;
  double p_reach = 1.0;  // probability attempt k happens
  for (unsigned k = 1; k <= n; ++k) {
    expected += p_reach;  // attempt k occurs with prob p_reach
    p_reach *= p_fail;
  }
  return expected;
}

double Arq::delivery_probability(std::uint32_t payload_bytes) const {
  const double p_fail = link_.frame_error_rate(payload_bytes);
  return 1.0 - std::pow(p_fail, static_cast<double>(policy_.max_attempts));
}

double Arq::expected_tx_energy_j(std::uint32_t payload_bytes) const {
  return expected_attempts(payload_bytes) * link_.frame_tx_energy_j(payload_bytes);
}

double Arq::expected_latency_s(std::uint32_t payload_bytes) const {
  const double attempts = expected_attempts(payload_bytes);
  const double per_try = link_.frame_time_s(payload_bytes);
  // Every failed attempt additionally waits out the ACK timeout, plus the
  // exponential-backoff window when the policy enables one.
  return attempts * per_try + (attempts - 1.0) * policy_.ack_timeout_s +
         expected_backoff_s(payload_bytes);
}

unsigned Arq::sample_attempts(sim::Rng& rng, std::uint32_t payload_bytes) const {
  const double p_fail = link_.frame_error_rate(payload_bytes);
  for (unsigned k = 1; k <= policy_.max_attempts; ++k) {
    if (!rng.bernoulli(p_fail)) return k;
  }
  return policy_.max_attempts + 1;  // dropped
}

double Arq::backoff_delay_s(unsigned attempt) const {
  IOB_EXPECTS(attempt >= 1, "backoff follows a numbered failed attempt");
  if (policy_.backoff_base_s <= 0.0) return 0.0;
  // Doubling in closed form, saturating well before overflow territory.
  double delay = policy_.backoff_base_s;
  for (unsigned k = 1; k < attempt; ++k) {
    delay *= 2.0;
    if (policy_.backoff_max_s > 0.0 && delay >= policy_.backoff_max_s) break;
  }
  if (policy_.backoff_max_s > 0.0 && delay > policy_.backoff_max_s) {
    delay = policy_.backoff_max_s;
  }
  return delay;
}

double Arq::sample_backoff_s(sim::Rng& rng, unsigned attempt) const {
  const double mean = backoff_delay_s(attempt);
  if (mean <= 0.0 || policy_.backoff_jitter <= 0.0) return mean;
  return mean * rng.uniform(1.0 - policy_.backoff_jitter, 1.0 + policy_.backoff_jitter);
}

double Arq::expected_backoff_s(std::uint32_t payload_bytes) const {
  if (policy_.backoff_base_s <= 0.0) return 0.0;
  const double p_fail = link_.frame_error_rate(payload_bytes);
  // Jitter is symmetric around 1, so the expectation uses the mean delay.
  double expected = 0.0;
  double p_reach = p_fail;  // probability the k-th failure happens
  for (unsigned k = 1; k < policy_.max_attempts; ++k) {
    expected += p_reach * backoff_delay_s(k);
    p_reach *= p_fail;
  }
  return expected;
}

}  // namespace iob::comm
