#include "comm/arq.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace iob::comm {

Arq::Arq(const Link& link, ArqPolicy policy) : link_(link), policy_(policy) {
  IOB_EXPECTS(policy_.max_attempts >= 1, "ARQ needs at least one attempt");
  IOB_EXPECTS(policy_.ack_timeout_s >= 0.0, "ACK timeout must be non-negative");
}

double Arq::expected_attempts(std::uint32_t payload_bytes) const {
  const double p_fail = link_.frame_error_rate(payload_bytes);
  const double p_ok = 1.0 - p_fail;
  if (p_ok <= 0.0) return policy_.max_attempts;
  // Truncated geometric: E[attempts | delivered or exhausted].
  const unsigned n = policy_.max_attempts;
  double expected = 0.0;
  double p_reach = 1.0;  // probability attempt k happens
  for (unsigned k = 1; k <= n; ++k) {
    expected += p_reach;  // attempt k occurs with prob p_reach
    p_reach *= p_fail;
  }
  return expected;
}

double Arq::delivery_probability(std::uint32_t payload_bytes) const {
  const double p_fail = link_.frame_error_rate(payload_bytes);
  return 1.0 - std::pow(p_fail, static_cast<double>(policy_.max_attempts));
}

double Arq::expected_tx_energy_j(std::uint32_t payload_bytes) const {
  return expected_attempts(payload_bytes) * link_.frame_tx_energy_j(payload_bytes);
}

double Arq::expected_latency_s(std::uint32_t payload_bytes) const {
  const double attempts = expected_attempts(payload_bytes);
  const double per_try = link_.frame_time_s(payload_bytes);
  // Every failed attempt additionally waits out the ACK timeout.
  return attempts * per_try + (attempts - 1.0) * policy_.ack_timeout_s;
}

unsigned Arq::sample_attempts(sim::Rng& rng, std::uint32_t payload_bytes) const {
  const double p_fail = link_.frame_error_rate(payload_bytes);
  for (unsigned k = 1; k <= policy_.max_attempts; ++k) {
    if (!rng.bernoulli(p_fail)) return k;
  }
  return policy_.max_attempts + 1;  // dropped
}

}  // namespace iob::comm
