#pragma once
/// \file mac_stats.hpp
/// Shared accounting structures for MAC protocols (TDMA, polling).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace iob::comm {

struct MacNodeStats {
  std::string name;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_retried = 0;
  std::uint64_t bytes_delivered = 0;
  sim::Accumulator latency_s;     ///< creation -> delivery (uplink)
  double tx_energy_j = 0.0;       ///< node-side transmit energy
  double rx_energy_j = 0.0;       ///< node-side receive energy (beacons/polls)
  std::uint64_t queue_overflows = 0;
  // Downlink (hub -> this node: actuation/audio-out traffic).
  std::uint64_t downlink_frames = 0;
  std::uint64_t downlink_bytes = 0;
  sim::Accumulator downlink_latency_s;
  // Drop taxonomy: frames_dropped == dropped_arq + dropped_fault +
  // dropped_overflow + dropped_overflow_clean + dropped_shed, always.
  // `dropped_arq` is ARQ retry exhaustion; `dropped_fault` is frames purged
  // when the node browns out or a downlink hits a powered-off node;
  // `dropped_overflow` is the store-and-retry buffer overflowing while the
  // hub is down; `dropped_overflow_clean` is the queue overflowing under
  // normal operation (a saturated schedule — every overflow now lands in
  // exactly one bucket, hub up or down); `dropped_shed` is frames the
  // degradation controller deliberately never offered to the schedule
  // (net::DegradationController duty-cycle shedding — each one is airtime
  // bought back for frames that do fly).
  std::uint64_t frames_dropped_arq = 0;
  std::uint64_t frames_dropped_fault = 0;
  std::uint64_t frames_dropped_overflow = 0;
  std::uint64_t frames_dropped_overflow_clean = 0;
  std::uint64_t frames_dropped_shed = 0;
  // Channel-health observables for the degradation control loop
  // (docs/robustness.md): per-superframe EWMAs of this node's delivery
  // ratio (delivered / attempts) and retry rate (retries / attempts),
  // updated only for superframes where the node attempted traffic.
  double delivery_ratio_ewma = 1.0;
  double retry_rate_ewma = 0.0;
};

struct MacStats {
  std::vector<MacNodeStats> nodes;
  double hub_tx_energy_j = 0.0;   ///< beacons / polls / acks
  double hub_rx_energy_j = 0.0;   ///< data reception
  double busy_airtime_s = 0.0;    ///< medium occupied
  double elapsed_s = 0.0;
  /// Superframes elided because the hub was down (no beacon, no slots);
  /// leaves store-and-retry through these. Zero on the clean path.
  std::uint64_t superframes_skipped = 0;

  [[nodiscard]] double utilization() const {
    return elapsed_s > 0.0 ? busy_airtime_s / elapsed_s : 0.0;
  }
  [[nodiscard]] std::uint64_t total_bytes_delivered() const {
    std::uint64_t sum = 0;
    for (const auto& n : nodes) sum += n.bytes_delivered;
    return sum;
  }
  [[nodiscard]] double aggregate_goodput_bps() const {
    return elapsed_s > 0.0 ? static_cast<double>(total_bytes_delivered()) * 8.0 / elapsed_s : 0.0;
  }
};

}  // namespace iob::comm
