#pragma once
/// \file arq.hpp
/// Stop-and-wait ARQ over a lossy link: analytic expectations (for the
/// platform power model) and stochastic per-frame attempt sampling (for the
/// DES). Retransmissions multiply both airtime and energy, so reliability
/// feeds directly into the paper's energy story.

#include <cstdint>

#include "comm/link.hpp"
#include "sim/rng.hpp"

namespace iob::comm {

struct ArqPolicy {
  unsigned max_attempts = 8;    ///< frame dropped after this many tries
  double ack_timeout_s = 1e-3;  ///< wait before a retry
  // Exponential backoff under burst loss (docs/robustness.md): after the
  // k-th failed attempt wait an extra min(backoff_base_s * 2^(k-1),
  // backoff_max_s), jittered by a uniform factor in [1-j, 1+j]. The
  // default base of 0 disables backoff entirely, preserving the legacy
  // stop-and-wait timing bit-for-bit. Fields are appended (not reordered)
  // so existing aggregate initializers keep their meaning.
  double backoff_base_s = 0.0;  ///< first-retry backoff; 0 disables
  double backoff_max_s = 0.0;   ///< cap on the doubled delay; 0 = uncapped
  double backoff_jitter = 0.0;  ///< relative jitter j in [0, 1)
};

class Arq {
 public:
  Arq(const Link& link, ArqPolicy policy = {});

  /// Expected number of transmissions per delivered frame (geometric mean,
  /// truncated at max_attempts).
  [[nodiscard]] double expected_attempts(std::uint32_t payload_bytes) const;

  /// Probability the frame is delivered within max_attempts.
  [[nodiscard]] double delivery_probability(std::uint32_t payload_bytes) const;

  /// Expected TX energy per delivered frame (J), counting failed attempts.
  [[nodiscard]] double expected_tx_energy_j(std::uint32_t payload_bytes) const;

  /// Expected latency per delivered frame (s): attempts * (airtime + timeout
  /// on failures).
  [[nodiscard]] double expected_latency_s(std::uint32_t payload_bytes) const;

  /// Sample the number of attempts for one frame (>= 1; == max_attempts+1
  /// encodes a drop).
  unsigned sample_attempts(sim::Rng& rng, std::uint32_t payload_bytes) const;

  /// Deterministic (mean) backoff delay after the `attempt`-th failure
  /// (attempt >= 1): min(base * 2^(attempt-1), max). Zero when backoff is
  /// disabled.
  [[nodiscard]] double backoff_delay_s(unsigned attempt) const;

  /// Jittered backoff after the `attempt`-th failure, drawn from `rng`
  /// (pass a forked fault/policy stream to keep traces deterministic).
  /// When `backoff_jitter == 0` no draw is consumed.
  double sample_backoff_s(sim::Rng& rng, unsigned attempt) const;

  /// Expected total backoff wait per frame: the k-th failure occurs with
  /// probability p_fail^k, and only failures before the final attempt are
  /// followed by a backoff window.
  [[nodiscard]] double expected_backoff_s(std::uint32_t payload_bytes) const;

  [[nodiscard]] const ArqPolicy& policy() const { return policy_; }

 private:
  const Link& link_;
  ArqPolicy policy_;
};

}  // namespace iob::comm
