#pragma once
/// \file arq.hpp
/// Stop-and-wait ARQ over a lossy link: analytic expectations (for the
/// platform power model) and stochastic per-frame attempt sampling (for the
/// DES). Retransmissions multiply both airtime and energy, so reliability
/// feeds directly into the paper's energy story.

#include <cstdint>

#include "comm/link.hpp"
#include "sim/rng.hpp"

namespace iob::comm {

struct ArqPolicy {
  unsigned max_attempts = 8;    ///< frame dropped after this many tries
  double ack_timeout_s = 1e-3;  ///< wait before a retry
};

class Arq {
 public:
  Arq(const Link& link, ArqPolicy policy = {});

  /// Expected number of transmissions per delivered frame (geometric mean,
  /// truncated at max_attempts).
  [[nodiscard]] double expected_attempts(std::uint32_t payload_bytes) const;

  /// Probability the frame is delivered within max_attempts.
  [[nodiscard]] double delivery_probability(std::uint32_t payload_bytes) const;

  /// Expected TX energy per delivered frame (J), counting failed attempts.
  [[nodiscard]] double expected_tx_energy_j(std::uint32_t payload_bytes) const;

  /// Expected latency per delivered frame (s): attempts * (airtime + timeout
  /// on failures).
  [[nodiscard]] double expected_latency_s(std::uint32_t payload_bytes) const;

  /// Sample the number of attempts for one frame (>= 1; == max_attempts+1
  /// encodes a drop).
  unsigned sample_attempts(sim::Rng& rng, std::uint32_t payload_bytes) const;

  [[nodiscard]] const ArqPolicy& policy() const { return policy_; }

 private:
  const Link& link_;
  ArqPolicy policy_;
};

}  // namespace iob::comm
