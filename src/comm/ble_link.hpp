#pragma once
/// \file ble_link.hpp
/// Bluetooth Low Energy link — the radiative baseline the paper argues
/// against (Sec. III-B: RF radiates a room-scale bubble, costs 1-10 mW, and
/// is energy-inefficient for 1-2 m on-body channels). Parameters are
/// BLE-4/5-class: 1 Mb/s PHY, ~15 mW active radio, connection-event duty
/// cycling with its per-event wake cost, and GFSK at the SNR given by the
/// on-body RF path-loss model.

#include "comm/link.hpp"
#include "phy/rf_channel.hpp"

namespace iob::comm {

struct BleLinkParams {
  double phy_rate_bps = 1e6;            ///< BLE 1M PHY
  double tx_power_w = 15e-3;            ///< active TX (radio + PA)
  double rx_power_w = 13e-3;            ///< active RX
  double idle_power_w = 20e-6;          ///< connection maintained, no data
  double sleep_power_w = 2e-6;
  double wake_energy_j = 30e-6;         ///< crystal + PLL + ramp per event
  double wake_time_s = 1.5e-3;
  double connection_interval_s = 30e-3; ///< typical streaming interval
  std::uint32_t frame_overhead_bits = 176;  ///< preamble+AA+header+MIC+CRC
  double per_frame_turnaround_s = 150e-6;   ///< T_IFS
  double protocol_efficiency = 0.55;    ///< L2CAP/ATT + IFS overhead
  double tx_power_dbm = 0.0;            ///< radiated power for link budget
  double channel_distance_m = 1.5;      ///< around-body path
  phy::RfChannelParams channel{};
};

class BleLink final : public Link {
 public:
  explicit BleLink(BleLinkParams params = {});

  /// Average TX-side power including connection-event wake costs — this is
  /// where BLE loses at ULP rates even with aggressive duty cycling.
  [[nodiscard]] double stream_tx_power_w(double offered_bps,
                                         std::uint32_t payload_bytes = 240) const override;

  [[nodiscard]] const BleLinkParams& params() const { return params_; }
  [[nodiscard]] const phy::RfChannel& channel() const { return channel_; }

 private:
  static LinkSpec make_spec(const BleLinkParams& p, const phy::RfChannel& ch);

  BleLinkParams params_;
  phy::RfChannel channel_;
};

}  // namespace iob::comm
