#include "comm/channel_dynamics.hpp"

#include <cmath>

#include "common/units.hpp"

namespace iob::comm {

ChannelDynamics::ChannelDynamics(const Link& link, ChannelDynamicsConfig cfg,
                                 sim::Rng rng)
    : link_(link) {
  if (cfg.interference.has_value() && cfg.interference->aggressors > 0 &&
      cfg.interference->duty_cycle > 0.0) {
    field_.emplace(*cfg.interference);
  }
  if (cfg.motion.has_value()) {
    // Sub-stream 1, so future dynamics components get their own forks
    // without re-seeding the motion chain (same discipline as the fault
    // injector's Gilbert–Elliott channel).
    motion_.emplace(*cfg.motion, rng.fork(1));
  }
}

double ChannelDynamics::fer_at(double snr_db, std::uint32_t payload_bytes) const {
  const auto n_bits = static_cast<unsigned>(link_.on_air_bits(payload_bytes));
  const double ber =
      phy::bit_error_rate(link_.spec().modulation, units::from_db(snr_db));
  return 1.0 - phy::packet_success_probability(ber, n_bits);
}

double ChannelDynamics::loss_probability(double t, std::uint32_t payload_bytes,
                                         double base_fer) {
  const double delta_db = motion_ ? motion_->gain_delta_db(t) : 0.0;
  const double snr_db = link_.spec().link_snr_db + delta_db;
  // Bit-identity anchor: with no gain shift, keep the MAC's precomputed
  // base FER bit-for-bit rather than recomputing it.
  const double quiet =
      (delta_db == 0.0) ? base_fer : fer_at(snr_db, payload_bytes);
  if (!field_) return quiet;
  const double p = field_->active_probability();
  const double hit = fer_at(field_->effective_snir_db(snr_db), payload_bytes);
  return (1.0 - p) * quiet + p * hit;
}

}  // namespace iob::comm
