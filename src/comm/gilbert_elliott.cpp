#include "comm/gilbert_elliott.hpp"

#include <utility>

#include "common/expect.hpp"

namespace iob::comm {

GilbertElliott::GilbertElliott(GilbertElliottParams params, sim::Rng rng)
    : params_(params), rng_(std::move(rng)) {
  IOB_EXPECTS(params_.mean_good_s > 0.0, "good-state sojourn mean must be positive");
  IOB_EXPECTS(params_.mean_bad_s > 0.0, "bad-state sojourn mean must be positive");
  IOB_EXPECTS(params_.bad_loss >= 0.0 && params_.bad_loss <= 1.0,
              "bad-state loss must be a probability");
  // The chain starts in the good state; draw its first sojourn up front so
  // the state timeline is fully determined by the fault stream alone.
  state_end_ = rng_.exponential(params_.mean_good_s);
}

double GilbertElliott::loss_probability(sim::Time t, double base_fer) {
  while (state_end_ < t) {
    bad_ = !bad_;
    state_end_ += rng_.exponential(bad_ ? params_.mean_bad_s : params_.mean_good_s);
  }
  if (!bad_) return base_fer;
  // Independent loss mechanisms compound: survive the base channel AND the
  // burst interferer.
  return 1.0 - (1.0 - base_fer) * (1.0 - params_.bad_loss);
}

double GilbertElliott::stationary_bad_fraction() const {
  return params_.mean_bad_s / (params_.mean_good_s + params_.mean_bad_s);
}

double GilbertElliott::expected_loss(double base_fer) const {
  const double pi_bad = stationary_bad_fraction();
  const double bad = 1.0 - (1.0 - base_fer) * (1.0 - params_.bad_loss);
  return (1.0 - pi_bad) * base_fer + pi_bad * bad;
}

}  // namespace iob::comm
