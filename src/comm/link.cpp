#include "comm/link.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expect.hpp"
#include "common/units.hpp"

namespace iob::comm {

Link::Link(LinkSpec spec) : spec_(std::move(spec)) {
  IOB_EXPECTS(spec_.phy_rate_bps > 0, "link rate must be positive");
  IOB_EXPECTS(spec_.tx_energy_per_bit_j >= 0 && spec_.rx_energy_per_bit_j >= 0,
              "per-bit energies must be non-negative");
  IOB_EXPECTS(spec_.protocol_efficiency > 0 && spec_.protocol_efficiency <= 1.0,
              "protocol efficiency must be in (0, 1]");
}

std::uint64_t Link::on_air_bits(std::uint32_t payload_bytes) const {
  return static_cast<std::uint64_t>(payload_bytes) * 8 + spec_.frame_overhead_bits;
}

double Link::frame_time_s(std::uint32_t payload_bytes) const {
  return static_cast<double>(on_air_bits(payload_bytes)) / spec_.phy_rate_bps +
         spec_.per_frame_turnaround_s;
}

double Link::frame_tx_energy_j(std::uint32_t payload_bytes) const {
  return static_cast<double>(on_air_bits(payload_bytes)) * spec_.tx_energy_per_bit_j;
}

double Link::frame_rx_energy_j(std::uint32_t payload_bytes) const {
  return static_cast<double>(on_air_bits(payload_bytes)) * spec_.rx_energy_per_bit_j;
}

double Link::app_throughput_bps(std::uint32_t payload_bytes) const {
  IOB_EXPECTS(payload_bytes > 0, "payload must be non-empty");
  const double app_bits = static_cast<double>(payload_bytes) * 8.0;
  return app_bits / frame_time_s(payload_bytes) * spec_.protocol_efficiency;
}

double Link::bit_error_rate() const {
  return phy::bit_error_rate(spec_.modulation, units::from_db(spec_.link_snr_db));
}

double Link::frame_error_rate(std::uint32_t payload_bytes) const {
  const double per_ok = phy::packet_success_probability(
      bit_error_rate(), static_cast<unsigned>(on_air_bits(payload_bytes)));
  return 1.0 - per_ok;
}

double Link::stream_tx_power_w(double offered_bps, std::uint32_t payload_bytes) const {
  IOB_EXPECTS(offered_bps >= 0, "offered load must be non-negative");
  IOB_EXPECTS(payload_bytes > 0, "payload must be non-empty");
  const double capacity = app_throughput_bps(payload_bytes);
  const double carried = std::min(offered_bps, capacity);
  const double frames_per_s = carried / (static_cast<double>(payload_bytes) * 8.0);
  const double airtime_frac =
      std::min(1.0, frames_per_s * static_cast<double>(on_air_bits(payload_bytes)) /
                        spec_.phy_rate_bps);
  const double tx = frames_per_s * frame_tx_energy_j(payload_bytes);
  const double idle = spec_.idle_power_w * (1.0 - airtime_frac);
  return tx + idle;
}

double Link::effective_energy_per_app_bit_j(double offered_bps,
                                            std::uint32_t payload_bytes) const {
  IOB_EXPECTS(offered_bps > 0, "offered load must be positive");
  const double carried = std::min(offered_bps, app_throughput_bps(payload_bytes));
  return stream_tx_power_w(offered_bps, payload_bytes) / carried;
}

}  // namespace iob::comm
