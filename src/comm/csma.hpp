#pragma once
/// \file csma.hpp
/// Slotted CSMA/CA with binary exponential backoff on the shared body bus —
/// the contention-based alternative to hub-coordinated TDMA. The body is a
/// single broadcast medium with ~ns propagation, so carrier sensing is
/// effectively perfect and collisions happen only when two backoffs expire
/// in the same contention mini-slot. Backlogged nodes must keep their
/// receivers sensing (backoff countdown + busy medium), which puts CSMA's
/// leaf energy between TDMA's (sleep between slots) and polling's (always
/// listening) — quantified in the A2 ablation.

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "comm/frame.hpp"
#include "comm/link.hpp"
#include "comm/mac_stats.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace iob::comm {

struct CsmaConfig {
  double sigma_s = 20e-6;       ///< contention mini-slot
  unsigned cw_min = 8;          ///< initial contention window (mini-slots)
  unsigned cw_max = 256;
  unsigned max_retries = 8;     ///< attempts (collision or loss) before drop
  std::size_t max_queue_frames = 4096;
};

class CsmaBus {
 public:
  using DeliveryHandler = std::function<void(const Frame&, sim::Time)>;

  CsmaBus(sim::Simulator& sim, const Link& link, CsmaConfig config = {},
          sim::TraceSink* trace = nullptr);

  NodeId add_node(std::string name);
  bool enqueue(NodeId node, Frame frame);
  void set_delivery_handler(DeliveryHandler handler) { on_delivery_ = std::move(handler); }

  void start(sim::Time t0 = 0.0);
  void stop() { running_ = false; }

  [[nodiscard]] const MacStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

 private:
  struct NodeState {
    std::deque<Frame> queue;
    unsigned backoff = 0;    ///< mini-slots remaining
    unsigned cw = 8;
    unsigned attempts = 0;   ///< attempts on the head frame
  };

  void arm_round();
  void run_round();
  void draw_backoff(NodeState& node);
  [[nodiscard]] bool backlogged() const;

  sim::Simulator& sim_;
  const Link& link_;
  CsmaConfig config_;
  sim::TraceSink* trace_;
  std::vector<NodeState> nodes_;
  MacStats stats_;
  DeliveryHandler on_delivery_;
  bool running_ = false;
  bool round_armed_ = false;
  std::uint64_t collisions_ = 0;
  sim::Rng rng_;
  sim::Time started_at_ = 0.0;
  sim::Time medium_free_at_ = 0.0;  ///< end of the in-flight transmission
};

}  // namespace iob::comm
