#include "comm/polling.hpp"

#include <utility>

#include "common/expect.hpp"

namespace iob::comm {

PollingMac::PollingMac(sim::Simulator& sim, const Link& link, PollingConfig config,
                       sim::TraceSink* trace)
    : sim_(sim), link_(link), config_(config), trace_(trace), rng_(sim.rng().fork(0x901d)) {}

NodeId PollingMac::add_node(std::string name) {
  IOB_EXPECTS(!running_, "cannot add nodes while the MAC is running");
  nodes_.push_back(NodeState{});
  MacNodeStats s;
  s.name = std::move(name);
  stats_.nodes.push_back(std::move(s));
  return static_cast<NodeId>(nodes_.size());
}

bool PollingMac::enqueue(NodeId node, Frame frame) {
  IOB_EXPECTS(node >= 1 && node <= nodes_.size(), "unknown node id");
  auto& st = nodes_[node - 1];
  if (st.queue.size() >= config_.max_queue_frames) {
    ++stats_.nodes[node - 1].queue_overflows;
    return false;
  }
  frame.src = node;
  frame.dst = kHubId;
  st.queue.push_back(std::move(frame));
  return true;
}

void PollingMac::start(sim::Time t0) {
  IOB_EXPECTS(!nodes_.empty(), "polling MAC needs at least one node");
  running_ = true;
  started_at_ = t0;
  idle_settled_until_ = t0;
  sim_.at(t0, [this] { poll_next(); });
}

void PollingMac::settle_idle_energy() {
  const sim::Time now = sim_.now();
  if (now <= idle_settled_until_) return;
  const double dt = now - idle_settled_until_;
  // Every leaf idle-listens between polls; charge the configured fraction of
  // RX power for the elapsed wall time (airtime double-count is negligible
  // at the utilizations of interest, and conservative otherwise).
  const double w = link_.spec().rx_power_w * config_.idle_listen_factor;
  for (auto& ns : stats_.nodes) ns.rx_energy_j += w * dt;
  idle_settled_until_ = now;
  stats_.elapsed_s = now - started_at_;
}

void PollingMac::poll_next() {
  if (!running_) return;
  settle_idle_energy();

  const std::size_t idx = next_node_;
  next_node_ = (next_node_ + 1) % nodes_.size();
  auto& node = nodes_[idx];
  auto& ns = stats_.nodes[idx];

  // Hub poll; the polled leaf receives it (its idle listening already covers
  // the RX window energetically; the poll airtime occupies the medium).
  const double poll_air = link_.frame_time_s(config_.poll_bytes);
  stats_.hub_tx_energy_j += link_.frame_tx_energy_j(config_.poll_bytes);
  stats_.busy_airtime_s += poll_air;

  double reply_air = 0.0;
  if (node.queue.empty()) {
    reply_air = link_.frame_time_s(config_.nothing_bytes);
    ns.tx_energy_j += link_.frame_tx_energy_j(config_.nothing_bytes);
    stats_.hub_rx_energy_j += link_.frame_rx_energy_j(config_.nothing_bytes);
  } else {
    Frame& head = node.queue.front();
    reply_air = link_.frame_time_s(head.payload_bytes);
    ns.tx_energy_j += link_.frame_tx_energy_j(head.payload_bytes);
    stats_.hub_rx_energy_j += link_.frame_rx_energy_j(head.payload_bytes);

    const bool lost = rng_.bernoulli(link_.frame_error_rate(head.payload_bytes));
    if (lost) {
      ++ns.frames_retried;
      if (++node.head_retries > config_.max_retries) {
        ++ns.frames_dropped;
        node.queue.pop_front();
        node.head_retries = 0;
      }
    } else {
      const sim::Time delivered_at = sim_.now() + poll_air + reply_air;
      ++ns.frames_delivered;
      ns.bytes_delivered += head.payload_bytes;
      ns.latency_s.add(delivered_at - head.created_s);
      if (trace_) {
        trace_->emit(delivered_at, "polling", "deliver",
                     ns.name + " bytes=" + std::to_string(head.payload_bytes));
      }
      if (on_delivery_) on_delivery_(head, delivered_at);
      node.queue.pop_front();
      node.head_retries = 0;
    }
  }
  stats_.busy_airtime_s += reply_air;

  sim_.after(poll_air + reply_air, [this] { poll_next(); });
}

}  // namespace iob::comm
