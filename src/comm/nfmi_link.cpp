#include "comm/nfmi_link.hpp"

#include "common/units.hpp"
#include "phy/noise.hpp"

namespace iob::comm {

LinkSpec NfmiLink::make_spec(const NfmiLinkParams& p, const phy::NfmiChannel& ch) {
  LinkSpec s;
  s.name = "NFMI (magnetic)";
  s.phy_rate_bps = p.phy_rate_bps;
  s.tx_energy_per_bit_j = p.tx_power_w / p.phy_rate_bps;
  s.rx_energy_per_bit_j = p.rx_power_w / p.phy_rate_bps;
  s.tx_power_w = p.tx_power_w;
  s.rx_power_w = p.rx_power_w;
  s.idle_power_w = p.idle_power_w;
  s.sleep_power_w = p.sleep_power_w;
  s.wake_energy_j = p.wake_energy_j;
  s.wake_time_s = p.wake_time_s;
  s.frame_overhead_bits = p.frame_overhead_bits;
  s.per_frame_turnaround_s = p.per_frame_turnaround_s;
  s.protocol_efficiency = p.protocol_efficiency;
  s.modulation = phy::Modulation::kGfsk;

  const double rx_w = p.tx_power_w * units::from_db(ch.gain_db(p.channel_distance_m));
  const phy::Receiver rx{p.phy_rate_bps, 10.0, 290.0};
  s.link_snr_db = rx.snr_db(rx_w);
  return s;
}

NfmiLink::NfmiLink(NfmiLinkParams params)
    : Link(make_spec(params, phy::NfmiChannel(params.channel))),
      params_(params),
      channel_(params.channel) {}

}  // namespace iob::comm
