#pragma once
/// \file wir_link.hpp
/// Wi-R link: the commercial EQS-HBC implementation the paper builds on
/// (Sec. IV-B: "Wi-R ... has been demonstrated to show high data rate
/// (4 Mbps) communication with an energy efficiency of ~100 pJ/bit
/// [29][30]"). The link budget is derived from the `phy::EqsChannel` model:
/// the operating SNR comes from the actual flat-band channel gain, TX swing
/// and the high-Z receiver noise floor, so reliability is a consequence of
/// the biophysics rather than an assumed constant.

#include <memory>

#include "comm/link.hpp"
#include "phy/eqs_channel.hpp"

namespace iob::comm {

struct WiRLinkParams {
  double phy_rate_bps = 4e6;              ///< demonstrated Wi-R rate [29][30]
  double energy_per_bit_j = 100e-12;      ///< headline 100 pJ/bit (TX+RX)
  double tx_share = 0.6;                  ///< TX fraction of the per-bit energy
  double tx_voltage_v = 1.0;              ///< on-body swing
  double idle_power_w = 0.5e-6;           ///< quiet bus floor
  double sleep_power_w = 50e-9;
  double wake_energy_j = 5e-9;            ///< EQS wake is nearly free (no PLL)
  double wake_time_s = 2e-6;
  std::uint32_t frame_overhead_bits = 96; ///< preamble+sync+header+CRC
  double per_frame_turnaround_s = 2e-6;
  double channel_distance_m = 1.0;        ///< default on-body path length
  /// In-band interference at the receiver (signal-to-interference ratio,
  /// dB). +inf (the default, encoded as >= 300) means a clean band; the
  /// BodyWire scenario [20] is -30 dB.
  double interference_sir_db = 300.0;
  /// Time-domain interference-rejection capability of the receiver (dB of
  /// effective SIR improvement); BodyWire-class cancellation is ~45 dB.
  double interference_rejection_db = 45.0;
  phy::EqsChannelParams channel{};
};

class WiRLink final : public Link {
 public:
  explicit WiRLink(WiRLinkParams params = {});

  /// Parameter set for the sub-uW authentication/medical node class of
  /// SubuWRComm [21] (415 nW at 1-10 kb/s): reduced PHY rate, better
  /// energy/bit at low swing, and a deep-sleep-class idle floor. A node
  /// streaming 10 kb/s on this profile lands in the ~400 nW class
  /// (asserted in tests).
  static WiRLinkParams ulp_profile();

  /// The underlying biophysical channel.
  [[nodiscard]] const phy::EqsChannel& channel() const { return channel_; }

  /// Operating SNR (dB) computed from the channel link budget.
  [[nodiscard]] double computed_snr_db() const { return spec_.link_snr_db; }

  [[nodiscard]] const WiRLinkParams& params() const { return params_; }

 private:
  static LinkSpec make_spec(const WiRLinkParams& p, const phy::EqsChannel& ch);

  WiRLinkParams params_;
  phy::EqsChannel channel_;
};

}  // namespace iob::comm
