#pragma once
/// \file frame.hpp
/// Link-layer frames exchanged between IoB leaf nodes and the on-body hub.

#include <cstdint>
#include <string>

#include "sim/event_queue.hpp"

namespace iob::comm {

/// Stable identifier of a network endpoint (node or hub).
using NodeId = std::uint32_t;
inline constexpr NodeId kHubId = 0;

enum class FrameKind : std::uint8_t {
  kData,     ///< sensor payload (uplink) or actuation payload (downlink)
  kAck,      ///< link-layer acknowledgement
  kPoll,     ///< hub poll (polling MAC)
  kBeacon,   ///< superframe beacon (TDMA MAC)
};

struct Frame {
  NodeId src = 0;
  NodeId dst = 0;
  FrameKind kind = FrameKind::kData;
  std::uint32_t seq = 0;
  std::uint32_t payload_bytes = 0;
  sim::Time created_s = 0.0;   ///< when the payload was generated (for latency)
  std::string stream;          ///< logical stream tag, e.g. "ecg", "audio"

  /// Total on-air bits including the link header (set by the link).
  [[nodiscard]] std::uint32_t payload_bits() const { return payload_bytes * 8; }
};

const char* to_string(FrameKind k);

}  // namespace iob::comm
