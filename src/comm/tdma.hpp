#pragma once
/// \file tdma.hpp
/// Hub-coordinated TDMA over the shared body bus (paper Sec. V).
///
/// EQS-HBC turns the whole body into *one* broadcast medium — electrically a
/// shared wire — so medium access is the hub's job, exactly like the nervous
/// system's time-multiplexed afferent pathways. The hub emits a beacon at
/// each superframe start (all leaves listen briefly to resynchronize), then
/// each leaf transmits in its assigned slot(s). Leaves sleep outside their
/// slots, which is what keeps the leaf radio budget at the ~uW level the
/// paper's Fig. 1 (right) requires.

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/frame.hpp"
#include "comm/link.hpp"
#include "comm/mac_stats.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace iob::comm {

class ChannelDynamics;
class GilbertElliott;

struct TdmaConfig {
  /// Per-slot duration. Non-positive requests *auto-sizing*: the bus
  /// derives the slot from its link's rate at construction —
  /// `frame_time_s(auto_slot_mtu_bytes) * auto_slot_margin` — so BLE/NFMI/
  /// ULP-Wi-R populations get slots that actually fit their frames instead
  /// of inheriting Wi-R's hand-set 1 ms. The positive default keeps every
  /// existing configuration bit-identical.
  double slot_s = 1e-3;
  double guard_s = 20e-6;        ///< inter-slot guard
  std::uint32_t beacon_bytes = 8;
  unsigned max_retries = 8;      ///< per-frame retransmissions before drop
  std::size_t max_queue_frames = 4096;
  /// Reserved hub->leaf (actuation) window after the beacon; 0 disables the
  /// downlink phase entirely (pure-uplink sensing networks).
  double downlink_slot_s = 0.0;
  /// Largest payload an auto-sized slot must fit (only read when
  /// `slot_s <= 0`); matches `NodeConfig::frame_bytes`' default MTU.
  std::uint32_t auto_slot_mtu_bytes = 240;
  /// Headroom factor on the auto-sized slot (> 1 leaves room for the
  /// occasional second small frame, mirroring the Wi-R default's slack).
  double auto_slot_margin = 1.25;
  /// Smoothing factor for the per-node delivery-ratio / retry-rate EWMAs
  /// in `MacNodeStats` (updated once per superframe with attempts).
  double health_ewma_alpha = 0.25;
};

class TdmaBus {
 public:
  using DeliveryHandler = std::function<void(const Frame&, sim::Time)>;

  /// \param link the shared body-bus link model (energy/time per frame)
  TdmaBus(sim::Simulator& sim, const Link& link, TdmaConfig config = {},
          sim::TraceSink* trace = nullptr);

  /// Register a leaf node; heavier `slot_weight` grants more slots per
  /// superframe (rate-proportional allocation). Returns the node's id
  /// (1-based; 0 is the hub).
  NodeId add_node(std::string name, unsigned slot_weight = 1);

  /// Queue an uplink frame at the node. Returns false (and counts an
  /// overflow) if the node queue is full.
  bool enqueue(NodeId node, Frame frame);

  /// Queue a hub->leaf (actuation) frame for transmission in the downlink
  /// window. Requires `downlink_slot_s > 0` and a frame that fits it.
  bool enqueue_downlink(NodeId dst, Frame frame);

  /// Invoked at the hub for every delivered frame.
  void set_delivery_handler(DeliveryHandler handler) { on_delivery_ = std::move(handler); }

  /// Invoked at the destination leaf for every delivered downlink frame.
  void set_downlink_handler(DeliveryHandler handler) { on_downlink_ = std::move(handler); }

  /// Invoked once per completed superframe with the boundary time (the end
  /// of the last slot) — the hub's batched inference engine flushes its
  /// staged streams here. Runs after every delivery of that superframe and
  /// before the next superframe is scheduled.
  using SuperframeHandler = std::function<void(sim::Time)>;
  void set_superframe_end_handler(SuperframeHandler handler) {
    on_superframe_end_ = std::move(handler);
  }

  /// Begin the superframe schedule at sim-time `t0`.
  void start(sim::Time t0 = 0.0);

  /// Stop issuing superframes (pending one finishes).
  void stop() { running_ = false; }

  // --- Fault hooks (no-ops on the clean path; see docs/robustness.md) ---

  /// Overlay a Gilbert–Elliott burst-loss process on the link's base frame
  /// error rate (both uplink and downlink draws). Non-owning; pass nullptr
  /// to restore the clean i.i.d. channel.
  void set_channel_fault(GilbertElliott* overlay) { channel_fault_ = overlay; }

  /// Install continuous channel hostility (SIR interference + body-motion
  /// fading). Same non-owning pattern as `set_channel_fault`; composition
  /// is base FER -> dynamics -> fault overlay.
  void set_channel_dynamics(ChannelDynamics* dynamics) { channel_dynamics_ = dynamics; }

  /// Account a frame the node's degradation controller shed before ever
  /// offering it to the schedule: counted as dropped (`dropped_shed`
  /// bucket) so the taxonomy still partitions offered-plus-shed traffic.
  void count_shed(NodeId node);

  /// Hub crash/restart. While down, superframes are elided (no beacon, no
  /// windows) but the cadence is kept so leaves re-sync on the next
  /// boundary; leaf queues become bounded store-and-retry buffers whose
  /// overflows are attributed to `frames_dropped_overflow`.
  void set_hub_up(bool up) { hub_up_ = up; }
  [[nodiscard]] bool hub_up() const { return hub_up_; }

  /// Node brownout/reboot. Powering a node off purges its uplink queue
  /// (counted as `frames_dropped_fault`), stops its beacon listening, and
  /// leaves its slots idle; downlink frames to it are dropped. Powering it
  /// back on rejoins the existing schedule at the next superframe.
  void set_node_powered(NodeId node, bool powered);
  [[nodiscard]] bool node_powered(NodeId node) const;

  [[nodiscard]] const MacStats& stats() const { return stats_; }
  [[nodiscard]] double superframe_duration_s() const;
  [[nodiscard]] std::size_t queue_depth(NodeId node) const;
  [[nodiscard]] const Link& link() const { return link_; }

 private:
  struct NodeState {
    unsigned weight = 1;
    std::deque<Frame> queue;
    unsigned head_retries = 0;
    bool powered = true;
    // Cumulative-counter snapshots for the per-superframe EWMA deltas.
    std::uint64_t ewma_delivered = 0;
    std::uint64_t ewma_retried = 0;
  };

  void run_superframe();
  /// Per-node channel-health EWMA refresh at a superframe boundary.
  void update_health_ewmas();
  /// Frame-loss probability at time `t`: the link's base FER, shifted by
  /// the channel dynamics (motion/interference) and compounded with the
  /// burst-loss overlay, when either is installed.
  [[nodiscard]] double frame_loss_probability(sim::Time t, std::uint32_t payload_bytes);
  /// Transmit from `node` inside its slot window; returns airtime used.
  double run_slot(std::size_t node_idx, sim::Time slot_start);
  /// Drain the hub downlink queue inside its window; returns airtime used.
  double run_downlink(sim::Time window_start);

  sim::Simulator& sim_;
  const Link& link_;
  TdmaConfig config_;
  sim::TraceSink* trace_;
  std::vector<NodeState> nodes_;
  std::deque<Frame> downlink_queue_;
  MacStats stats_;
  DeliveryHandler on_delivery_;
  DeliveryHandler on_downlink_;
  SuperframeHandler on_superframe_end_;
  bool running_ = false;
  sim::Rng rng_;
  sim::Time started_at_ = 0.0;
  GilbertElliott* channel_fault_ = nullptr;
  ChannelDynamics* channel_dynamics_ = nullptr;
  bool hub_up_ = true;
};

}  // namespace iob::comm
